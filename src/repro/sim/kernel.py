"""The event-driven simulation kernel behind every ``run_*`` loop.

Before this module existed, :class:`~repro.sim.server.ServerSimulator`
carried three hand-rolled epoch drivers (``run_workload``,
``run_vm_trace``, ``run_mix``) that each owned their own clock, warmup,
fast-forward gating, sampling, and energy accounting.  They diverged
once (the mix energy-convention bug) and each had to re-implement
quiescence gating separately.  The kernel extracts the loop once:

* :class:`WorkloadSource` is what a run *is* — the operating point at
  ``t``, the discrete events to apply at ``t``, and a ``horizon(t)``
  bound promising nothing workload-side happens before it;
* :class:`EpochKernel` is how a run *executes* — it owns the
  :class:`~repro.sim.fastforward.SimClock`, the warmup spin-up, the
  quiescence fast-forward gating, per-epoch sampling, energy/overhead
  accounting, and the stats reset/publish lifecycle.

Bit-for-bit equivalence with the pre-kernel loops is the contract
(pinned by ``tests/golden/kernel_golden.json``): the kernel performs the
identical sequence of float operations, RNG draws, and stat increments,
so samples, energies, and daemon statistics are exactly what the
hand-rolled loops produced — with fast-forward on *or* off.

The module also hosts the process-wide fast-forward default that lets
``repro run --no-fast-forward`` reach simulators built deep inside
experiment modules (mirroring the fault-plan context in
:mod:`repro.faults.context`).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Protocol,
    Tuple,
)

import numpy as np

from repro import perfcounters
from repro.errors import ConfigurationError
from repro.ksm.content import RegionContent
from repro.obs import residency as residency_mod
from repro.obs.residency import ResidencyStats
from repro.obs.tracer import GLOBAL_TRACER as TRACER
from repro.os.hotplug import HotplugStats
from repro.power.model import PowerCacheStats
from repro.sim.calendar import EventCalendar, intersect_horizons
from repro.sim.fastforward import FastForwardStats, SimClock, quiescent_horizon
from repro.soa import (
    accumulate_energy,
    batched_times,
    emit_replicated,
    monitor_timer_after,
)
from repro.units import PAGE_SIZE, PEAK_DRAM_BANDWIDTH_BYTES_PER_S
from repro.workloads.azure import AzureTrace
from repro.workloads.profiles import WorkloadProfile

if TYPE_CHECKING:
    from repro.sim.server import ServerSimulator

#: Free pages the swap-in fault path refuses to dip below (mirrors the
#: kernel keeping a reclaim reserve).  Owned here rather than in
#: ``repro.sim.server`` so the sources' ``stable_until`` reasoning and
#: ``ServerSimulator._try_swap_in`` share one definition.
SWAP_IN_RESERVE_PAGES = 2048


# --- process-wide fast-forward default --------------------------------------

_fast_forward_default = True


def fast_forward_default() -> bool:
    """The ambient fast-forward setting for simulators that don't pick."""
    return _fast_forward_default


def set_fast_forward_default(enabled: bool) -> None:
    """Set the process-wide default (``repro run --no-fast-forward``)."""
    global _fast_forward_default
    _fast_forward_default = enabled


@contextmanager
def fast_forward_scope(enabled: bool) -> Iterator[None]:
    """Scope the ambient default to a ``with`` block, restoring after."""
    previous = _fast_forward_default
    set_fast_forward_default(enabled)
    try:
        yield
    finally:
        set_fast_forward_default(previous)


# --- observables -------------------------------------------------------------


class EpochSample(NamedTuple):
    """One epoch's observables.

    A ``NamedTuple`` rather than a frozen dataclass: the kernel builds
    one per simulated epoch (hundreds of thousands per trace replay), and
    tuple construction is several times cheaper than a dataclass
    ``__init__`` while keeping the same field access and equality.
    """

    time_s: float
    used_pages: int
    free_pages: int
    offline_blocks: int
    dpd_fraction: float
    dram_power_w: float


@dataclass
class KernelRunState:
    """A paused kernel execution: everything the loop carries between
    epochs, and nothing else.

    Pure data by construction — no ``ServerSimulator``/system/policy
    references — so a state (together with the simulator it belongs to)
    is exactly what a checkpoint must capture.  The one indirect
    reference is :attr:`source`, and the concrete sources drop their
    ``sim`` back-reference when pickled (``__getstate__``); the snapshot
    layer re-binds it on restore.

    Produced by :meth:`EpochKernel.begin`, advanced in place by
    :meth:`EpochKernel.advance`, consumed by :meth:`EpochKernel.finish`.
    """

    source: "WorkloadSource"
    epoch_s: float
    pinned_churn: bool
    use_ff: bool
    duration_s: float
    clock: SimClock
    swap_stall_before: float
    samples: List[EpochSample] = field(default_factory=list)
    dram_energy: float = 0.0
    baseline_energy: float = 0.0
    residency: ResidencyStats = field(default_factory=ResidencyStats)
    finished: bool = False

    @property
    def now_s(self) -> float:
        """The paused clock: the next epoch to execute starts here."""
        return self.clock.now_s

    @property
    def done(self) -> bool:
        """Has the measured span reached ``duration_s``?"""
        return self.clock.now_s >= self.duration_s


@dataclass
class KernelRun:
    """What one kernel execution accumulated, before result shaping.

    The ``run_*`` wrappers in :mod:`repro.sim.server` turn this into
    their public result types (applying, e.g., the overhead energy
    convention); the raw sums here are exactly what the loop integrated.
    """

    samples: List[EpochSample]
    dram_energy_j: float
    baseline_dram_energy_j: float
    swap_stall_s: float
    duration_s: float
    #: Capacity-weighted per-power-state residency for the measured
    #: span; its buckets sum to ``duration_s`` (up to float rounding).
    residency: ResidencyStats = field(default_factory=ResidencyStats)


# --- the source protocol -----------------------------------------------------


class WorkloadSource(Protocol):
    """What the kernel needs to know about a workload.

    ``duration_s`` bounds the run.  Each epoch the kernel calls
    :meth:`apply` (discrete events, footprint resizes) before stepping
    the system, then :meth:`operating_point` for the epoch's bandwidth
    and row-miss rate.  :meth:`horizon` is the fast-forward contract:
    return a time strictly greater than *t* only if no workload-side
    activity (event, footprint change, pending resize) can occur before
    it; return *t* itself to veto fast-forwarding this epoch.  The
    kernel intersects the workload horizon with the system-side
    :func:`~repro.sim.fastforward.quiescent_horizon`.

    :meth:`stable_until` is the span planner's weaker contract: a bound
    before which — assuming physical memory state does not change in
    ``[t, bound)`` — every :meth:`apply` call is a strict no-op (no
    allocation, free, swap, or RNG draw) and :meth:`operating_point` is
    constant.  Unlike :meth:`horizon` it does *not* promise the system
    side is quiescent: the daemon's monitor may be armed, so the planner
    separately caps each span before the monitor timer can fire.  Any
    valid ``horizon`` is a valid (conservative) ``stable_until``, which
    is the fallback the kernel uses for sources that don't implement it.
    """

    duration_s: float

    def prepare(self) -> None:
        """Establish initial footprints before warmup begins."""

    def apply(self, t: float) -> None:
        """Apply this epoch's workload-side events at time *t*."""

    def operating_point(self, t: float) -> Tuple[float, float]:
        """``(bandwidth_bytes_per_s, row_miss_rate)`` at time *t*."""

    def horizon(self, t: float) -> float:
        """Earliest future workload-side activity (*t* itself: none now)."""

    def stable_until(self, t: float) -> float:
        """Bound before which :meth:`apply` is provably a strict no-op
        and the operating point constant (*t* itself: not provable now),
        given unchanged physical memory state."""


# --- concrete sources --------------------------------------------------------


@dataclass
class ProfileSource:
    """``n_copies`` of one profile with a time-varying footprint."""

    sim: "ServerSimulator"
    profile: WorkloadProfile
    n_copies: int = 1
    owner: str = "app"
    shortfall_pages: int = field(default=0, init=False)
    #: One-entry memo of ``footprint.at``: apply/horizon/stable_until all
    #: ask for the target at the same epoch time (``at`` is pure in t).
    _target_cache: Tuple[float, int] = field(default=(math.nan, 0),
                                             init=False, repr=False)

    def __post_init__(self) -> None:
        self.duration_s = self.profile.duration_s
        self._bandwidth = (self.profile.bandwidth_demand_bytes_per_s
                           * self.n_copies)
        self._row_miss = 1.0 - self.profile.row_hit_rate
        # All flat-run boundaries are known up front; consuming them from
        # a calendar replaces the per-epoch footprint rescan with an
        # amortized O(log n) pop while returning the identical floats
        # (next run end strictly after t == constant_until(t) whenever
        # the steadiness/ramp vetoes below don't fire).
        self._flat_calendar = EventCalendar(
            self.profile.footprint.flat_run_ends())

    def __getstate__(self) -> Dict[str, object]:
        # Snapshot support: the simulator back-reference would drag the
        # whole system into the pickle; the snapshot layer re-binds it.
        state = self.__dict__.copy()
        state["sim"] = None
        return state

    def _target_pages(self, t: float) -> int:
        cached_t, cached = self._target_cache
        if t == cached_t:
            return cached
        target = self.profile.footprint.at(t) * self.n_copies // PAGE_SIZE
        self._target_cache = (t, target)
        return target

    def prepare(self) -> None:
        initial = self._target_pages(0.0)
        if initial:
            self.sim._resize_owner(self.owner, initial, 0.0)

    def apply(self, t: float) -> None:
        self.shortfall_pages += self.sim._resize_owner(
            self.owner, self._target_pages(t), t)

    def operating_point(self, t: float) -> Tuple[float, float]:
        return self._bandwidth, self._row_miss

    def horizon(self, t: float) -> float:
        if not self.sim._owner_steady(self.owner, self._target_pages(t)):
            return t
        if self.profile.footprint.ramping_at(t):
            return t
        return self._flat_calendar.next_after(t)

    def stable_until(self, t: float) -> float:
        # apply() resolves to _resize_owner(owner, target, t); that is a
        # strict no-op on the `target == resident + held` branch provided
        # _try_swap_in also no-ops, i.e. nothing is held or free memory
        # sits at/below the swap-in reserve.  Free pages cannot change
        # inside a non-churn stable span, so the condition holds for the
        # whole flat run, not just at t.
        sim = self.sim
        mm = sim.system.mm
        held = sim.swap.held_for(self.owner)
        if self._target_pages(t) != mm.owner_pages(self.owner) + held:
            return t
        if held and mm.free_pages > SWAP_IN_RESERVE_PAGES:
            return t
        if self.profile.footprint.ramping_at(t):
            return t
        return self._flat_calendar.next_after(t)


@dataclass
class TraceSource:
    """An Azure-like VM arrival/departure trace replay.

    VMs only move at trace events, so the workload-side horizon is
    simply the next event's timestamp.  The run extends 300 s past the
    last event so the daemon's tail behavior is observable.
    """

    sim: "ServerSimulator"
    trace: AzureTrace
    mean_vm_bandwidth_bytes_per_s: float = 0.4e9

    def __post_init__(self) -> None:
        self.events = sorted(self.trace.events, key=lambda e: e.time_s)
        self.cursor = 0
        self.running = 0
        self.duration_s = max((e.time_s for e in self.events),
                              default=0.0) + 300.0

    def __getstate__(self) -> Dict[str, object]:
        # Snapshot support: drop the simulator back-reference (the
        # snapshot layer re-binds it on restore).
        state = self.__dict__.copy()
        state["sim"] = None
        return state

    def prepare(self) -> None:
        pass

    def apply(self, t: float) -> None:
        sim = self.sim
        ksm = sim.system.ksm
        while self.cursor < len(self.events) \
                and self.events[self.cursor].time_s <= t:
            event = self.events[self.cursor]
            self.cursor += 1
            vm = event.instance
            if event.kind == "arrive":
                pages = vm.vm_type.memory_bytes // PAGE_SIZE
                sim._resize_owner(vm.owner_id, pages, t, mergeable=True,
                                  emergency=True)
                self.running += 1
                if ksm is not None:
                    ksm.register(RegionContent(
                        owner_id=vm.owner_id, total_pages=pages,
                        image_id=vm.vm_type.image_id))
            else:
                if ksm is not None:
                    ksm.unregister(vm.owner_id)
                sim.system.mm.free_all(vm.owner_id)
                sim.swap.release(vm.owner_id)
                self.running = max(0, self.running - 1)

    def operating_point(self, t: float) -> Tuple[float, float]:
        return self.running * self.mean_vm_bandwidth_bytes_per_s, 0.5

    def horizon(self, t: float) -> float:
        # The sorted event list plus apply()'s cursor already *is* an
        # event calendar: the next timestamp is an O(1) peek.  A heap
        # would only re-derive what the cursor tracks for free.
        if self.cursor < len(self.events):
            next_event_s = self.events[self.cursor].time_s
            return t if next_event_s <= t else next_event_s
        return math.inf

    def stable_until(self, t: float) -> float:
        # Between events apply() is a pure cursor peek — a strict no-op
        # no matter what memory does — and running-VM count (hence the
        # operating point) only moves at events, so the stability bound
        # *is* the horizon.
        return self.horizon(t)


@dataclass
class MixSource:
    """Several profiles co-located in one physical memory."""

    sim: "ServerSimulator"
    profiles: List[WorkloadProfile]

    def __post_init__(self) -> None:
        if not self.profiles:
            raise ConfigurationError("need at least one profile")
        self.duration_s = max(p.duration_s for p in self.profiles)
        self.owners: Dict[str, WorkloadProfile] = {
            f"mix{i}-{p.name}": p for i, p in enumerate(self.profiles)}
        self._bandwidth = sum(p.bandwidth_demand_bytes_per_s
                              for p in self.profiles)
        self._row_miss = (sum((1.0 - p.row_hit_rate)
                              * p.bandwidth_demand_bytes_per_s
                              for p in self.profiles)
                          / max(self._bandwidth, 1.0))
        # One merged calendar of every owner's flat-run ends, pre-filtered
        # to runs ending before that owner's duration (a flat run reaching
        # duration_s keeps the clamped value constant beyond it, so it
        # never bounds the horizon).  min over owners of "next run end
        # after t" equals "next event after t" in the merged heap, so the
        # calendar pop returns the same float the per-owner scan did.
        self._flat_calendar = EventCalendar(
            end for p in self.profiles
            for end in p.footprint.flat_run_ends(p.duration_s))
        #: One-entry memo of every owner's target at t (aligned with the
        #: ``owners`` iteration order): apply/horizon/stable_until all
        #: read the same epoch time and ``at`` is pure in t.
        self._target_cache: Tuple[float, List[int]] = (math.nan, [])

    def __getstate__(self) -> Dict[str, object]:
        # Snapshot support: drop the simulator back-reference (the
        # snapshot layer re-binds it on restore).
        state = self.__dict__.copy()
        state["sim"] = None
        return state

    def _targets(self, t: float) -> List[int]:
        cached_t, targets = self._target_cache
        if t != cached_t:
            targets = [
                profile.footprint.at(min(t, profile.duration_s)) // PAGE_SIZE
                for profile in self.owners.values()]
            self._target_cache = (t, targets)
        return targets

    def prepare(self) -> None:
        for owner, profile in self.owners.items():
            initial = profile.footprint.at(0.0) // PAGE_SIZE
            if initial:
                self.sim._resize_owner(owner, initial, 0.0)

    def apply(self, t: float) -> None:
        for owner, target in zip(self.owners, self._targets(t)):
            self.sim._resize_owner(owner, target, t)

    def operating_point(self, t: float) -> Tuple[float, float]:
        return self._bandwidth, self._row_miss

    def horizon(self, t: float) -> float:
        # The vetoes stay per-owner (steadiness and ramp state are
        # dynamic); every veto path returns exactly t, so check order
        # cannot change the value.  The surviving bound comes from the
        # precomputed merged calendar.
        targets = self._targets(t)
        for (owner, profile), target in zip(self.owners.items(), targets):
            if not self.sim._owner_steady(owner, target):
                return t
            if t >= profile.duration_s:
                continue  # clamped at its final footprint forever
            if profile.footprint.ramping_at(t):
                return t
        return self._flat_calendar.next_after(t)

    def stable_until(self, t: float) -> float:
        # Per-owner mirror of ProfileSource.stable_until: each resize is
        # a strict no-op when the target matches resident + held and the
        # swap-in fault path cannot fire (nothing held, or free at/below
        # the reserve — free is read once, it cannot change mid-check).
        sim = self.sim
        mm = sim.system.mm
        free = mm.free_pages
        targets = self._targets(t)
        for (owner, profile), target in zip(self.owners.items(), targets):
            held = sim.swap.held_for(owner)
            if target != mm.owner_pages(owner) + held:
                return t
            if held and free > SWAP_IN_RESERVE_PAGES:
                return t
            if t >= profile.duration_s:
                continue  # clamped at its final footprint forever
            if profile.footprint.ramping_at(t):
                return t
        return self._flat_calendar.next_after(t)


# --- the driver --------------------------------------------------------------


class EpochKernel:
    """Drives one :class:`WorkloadSource` against one simulator.

    Owns everything the three hand-rolled loops used to duplicate: the
    epoch clock, the warmup spin-up, quiescence fast-forward gating,
    per-epoch sampling, energy integration, and the stats lifecycle
    (reset before the measured span, publish to the process counters
    after).
    """

    def __init__(self, sim: "ServerSimulator"):
        self.sim = sim
        self.system = sim.system

    # --- stats lifecycle --------------------------------------------------

    def reset_stats(self) -> None:
        """Zero every per-run counter the measured span accumulates.

        One reset path for all run shapes (``run_vm_trace`` used to
        reset ``ff_stats`` inline and leak daemon/hot-plug counters
        across back-to-back runs): policy stats, hot-plug stats,
        fast-forward accounting, and the power-model cache counters all
        start clean.  The power memo itself survives — only its
        hit/miss counters reset, so energies are unaffected.
        """
        self.system.policy.reset_stats()
        # Write through any fault wrapper: assigning on the wrapper would
        # shadow the core manager's counters (organic and injected
        # failures both record on the core), leaving the visible stats
        # frozen at zero for the whole faulted run.
        hotplug = self.system.hotplug
        getattr(hotplug, "inner", hotplug).stats = HotplugStats()
        self.sim.ff_stats = FastForwardStats()
        self.system.power_model.cache_stats = PowerCacheStats()

    def _publish_ff_stats(self) -> None:
        """Mirror the finished run's counters into the process totals."""
        counters = perfcounters.GLOBAL
        stats = self.sim.ff_stats
        counters.epochs_stepped += stats.epochs_stepped
        counters.epochs_fast_forwarded += stats.epochs_fast_forwarded
        counters.fast_forward_windows += stats.windows
        counters.epochs_batched += stats.epochs_batched
        counters.stable_spans += stats.spans_stable

    # --- sampling ---------------------------------------------------------

    def _sample(self, now_s: float, bandwidth: float,
                row_miss_rate: float) -> EpochSample:
        system = self.system
        mm = system.mm
        # Direct reads instead of mm.meminfo(): the snapshot object's
        # used_pages/free_pages derive from the same zone sums, but
        # meminfo() evaluates the free-page sum twice and builds a
        # frozen dataclass per epoch.
        free_pages = mm.free_pages
        used_pages = mm.online_pages - free_pages
        # One dpd_fraction() read feeds both the power model's cache key
        # (what system.dram_power would pass) and the sample field.
        policy = system.policy
        dpd = policy.dpd_fraction()
        power = system.power_model.busy_power_cached(
            bandwidth,
            active_residency=min(1.0, bandwidth
                                 / PEAK_DRAM_BANDWIDTH_BYTES_PER_S),
            row_miss_rate=row_miss_rate,
            dpd_fraction=dpd)
        power_w = power.total_w
        # Costs outside the dpd projection (migration traffic): added
        # only when nonzero, so policies without them — the GreenDIMM
        # adapter included — leave the float stream untouched.
        extra_w = policy.extra_power_w()
        if extra_w:
            power_w += extra_w
        return EpochSample(time_s=now_s,
                           used_pages=used_pages,
                           free_pages=free_pages,
                           offline_blocks=policy.offline_block_count,
                           dpd_fraction=dpd,
                           dram_power_w=power_w)

    def _baseline_power_w(self, bandwidth: float,
                          row_miss_rate: float) -> float:
        """Ungated-baseline power at the epoch's operating point."""
        return self.system.baseline_dram_power(
            bandwidth_bytes_per_s=bandwidth,
            active_residency=min(1.0, bandwidth
                                 / PEAK_DRAM_BANDWIDTH_BYTES_PER_S),
            row_miss_rate=row_miss_rate).total_w

    # --- quiescence fast-forward ------------------------------------------

    def _fast_forward_usable(self, churn: bool, epoch_s: float) -> bool:
        """Can this run profit from the fast path at all?

        With pinned churn expecting >= 1 arrival every epoch (``int``
        part of rate x epoch), every epoch perturbs memory, so no window
        could span more than one epoch — skip the detection overhead
        entirely.
        """
        if not self.sim.fast_forward:
            return False
        if churn and self.sim.pinned_churn_rate_per_s * epoch_s >= 1.0:
            return False
        return True

    def _fast_forward_window(self, clock: SimClock, end_s: float,
                             bandwidth: float, row_miss_rate: float,
                             churn: bool, samples: List[EpochSample],
                             dram_energy: float, baseline_energy: float,
                             residency: ResidencyStats,
                             ) -> Tuple[float, float]:
        """Advance epochs in [clock.now_s, end_s) without stepping the stack.

        The caller guarantees nothing can happen before *end_s*: owner
        footprints are flat and already resident, the daemon's monitor
        would no-op, KSM is idle, and no fault rule is live.  Each
        skipped epoch appends a clone of one template sample and
        accumulates energy with the same per-epoch float ops as the slow
        path.  Pinned churn (the one remaining source of activity) still
        runs for real each epoch, preserving the RNG stream; the moment
        it perturbs memory the epoch is completed through the normal
        machinery and the window closes.

        Returns the updated ``(dram_energy, baseline_energy)``.
        """
        sim = self.sim
        system = self.system
        mm = system.mm
        policy = system.policy
        epoch_s = clock.epoch_s
        stats = sim.ff_stats
        stats.windows += 1
        baseline_w = self._baseline_power_w(bandwidth, row_miss_rate)
        active_res = min(1.0, bandwidth / PEAK_DRAM_BANDWIDTH_BYTES_PER_S)
        # Bound unconditionally: the churn-path exit event below reads it
        # whenever the tracer is enabled at *exit*, which need not match
        # its state at entry (tracing can be toggled mid-run).
        skipped_before = stats.epochs_fast_forwarded
        if TRACER.enabled:
            TRACER.event("ff.enter", t_s=clock.now_s, end_s=end_s,
                         churn=churn)
        # The batched replay below assumes the standard monitor-timer
        # chain; a policy that cannot promise it (span_batchable unset)
        # takes the generic per-epoch tick_quiescent loop instead.
        if not churn and getattr(policy, "span_batchable", False):
            # No per-epoch side effects at all: replay the remaining float
            # arithmetic (monitor timer, clock, energy sums) as batched
            # np.add.accumulate chains.  ufunc.accumulate applies the add
            # strictly left to right in binary64, i.e. the *same* op
            # sequence as the scalar `x += step` loop, so every epoch
            # timestamp, both energy sums, the carried monitor timer, and
            # the final clock value are bit-identical to the stepped path.
            system.advance_time(clock.now_s)
            template = self._sample(clock.now_s, bandwidth, row_miss_rate)
            used = template.used_pages
            free = template.free_pages
            offline = template.offline_blocks
            dpd = template.dpd_fraction
            power_w = template.dram_power_w
            now = clock.now_s
            period = policy.monitor_period_s
            if (end_s - now) / epoch_s < 48.0:
                # Short window: the scalar chain beats the numpy batch's
                # fixed setup cost.  Same float ops either way, so the
                # crossover is purely a speed choice.
                append = samples.append
                since = policy.monitor_timer
                skipped = 0
                while now < end_s:
                    since += epoch_s
                    if since >= period:
                        since = 0.0
                    append(EpochSample(time_s=now, used_pages=used,
                                       free_pages=free,
                                       offline_blocks=offline,
                                       dpd_fraction=dpd,
                                       dram_power_w=power_w))
                    dram_energy += power_w * epoch_s
                    baseline_energy += baseline_w * epoch_s
                    skipped += 1
                    now += epoch_s
                policy.monitor_timer = since
                clock.now_s = now
                stats.epochs_fast_forwarded += skipped
                residency.add_span(skipped * epoch_s, active_res, dpd)
                if TRACER.enabled:
                    TRACER.event("ff.exit", t_s=now, epochs=skipped)
                return dram_energy, baseline_energy
            # Epoch timestamps: the `now += epoch_s` chain, one extra
            # element so the post-window clock value comes from the same
            # chain.  The pad loop only grows on pathological rounding.
            pad = max(int((end_s - now) / epoch_s) + 2, 4)
            while True:
                steps = np.empty(pad + 1, dtype=np.float64)
                steps[0] = now
                steps[1:] = epoch_s
                times = np.add.accumulate(steps)
                if times[-1] >= end_s:
                    break
                pad *= 2
            n = int(np.searchsorted(times, end_s, side="left"))
            emit_replicated(samples, times[:n].tolist(), template)
            if n:
                dram_energy = accumulate_energy(
                    dram_energy, power_w * epoch_s, n)
                baseline_energy = accumulate_energy(
                    baseline_energy, baseline_w * epoch_s, n)
                policy.monitor_timer = monitor_timer_after(
                    policy.monitor_timer, epoch_s, period, n)
            clock.now_s = float(times[n])
            stats.epochs_fast_forwarded += n
            # One closed-form span for the whole window: the operating
            # point is constant, so this equals the per-epoch sum up to
            # float rounding (which is why the residency invariant is
            # pinned with approx, never bitwise).
            residency.add_span(n * epoch_s, active_res, dpd)
            if TRACER.enabled:
                TRACER.event("ff.exit", t_s=clock.now_s, epochs=n)
            return dram_energy, baseline_energy
        template = None
        while clock.now_s < end_s:
            t = clock.now_s
            system.advance_time(t)
            if churn:
                free_before = mm.free_pages
                sim._pinned_churn(t, epoch_s)
                if mm.free_pages != free_before:
                    # Churn moved memory: finish this epoch on the slow
                    # path (the pending resize is still a guaranteed
                    # no-op) and hand control back to the outer loop.
                    system.step(t, epoch_s)
                    sample = self._sample(t, bandwidth, row_miss_rate)
                    samples.append(sample)
                    dram_energy += sample.dram_power_w * epoch_s
                    baseline_energy += baseline_w * epoch_s
                    residency.add_span(epoch_s, active_res,
                                       sample.dpd_fraction)
                    stats.epochs_stepped += 1
                    clock.tick()
                    break
            if template is None:
                template = self._sample(t, bandwidth, row_miss_rate)
            policy.tick_quiescent(epoch_s)
            samples.append(template._replace(time_s=t))
            dram_energy += template.dram_power_w * epoch_s
            baseline_energy += baseline_w * epoch_s
            residency.add_span(epoch_s, active_res, template.dpd_fraction)
            stats.epochs_fast_forwarded += 1
            clock.tick()
        if TRACER.enabled:
            TRACER.event("ff.exit", t_s=clock.now_s,
                         epochs=stats.epochs_fast_forwarded - skipped_before)
        return dram_energy, baseline_energy

    # --- stable stepped spans ----------------------------------------------

    def _plan_stable_span(self, t: float, epoch_s: float,
                          bound: float) -> int:
        """How many consecutive epochs from *t* are provably *stable*.

        A stable epoch still counts as stepped — the daemon's monitor is
        armed (free memory may sit outside the hysteresis band) — but
        nothing that could change system state can actually run during
        it: the caller has already proven ``apply`` is a strict no-op
        and the operating point constant before *bound*; this method
        additionally vetoes KSM activity and live fault rules (the same
        conditions :func:`~repro.sim.fastforward.quiescent_horizon`
        checks), intersects the fault injector's own horizon, and caps
        the span strictly before the epoch whose ``step`` would fire the
        monitor.  The timer cap replays the daemon's exact
        ``since += epoch_s`` float chain, so the firing epoch lands on
        the dynamic path at the identical simulated time either way.
        """
        system = self.system
        # A policy that cannot prove its step() reduces to the standard
        # timer chain between monitor fires vetoes stable spans outright
        # (correctness first, batching second): unknown policies default
        # to the veto via getattr.
        policy = system.policy
        if not getattr(policy, "span_batchable", False):
            return 0
        ksm = system.ksm
        if ksm is not None and (ksm.pass_just_completed
                                or ksm.registry.regions()):
            return 0
        injector = system.fault_injector
        if injector is not None:
            bound = intersect_horizons(t, bound,
                                       injector.quiescent_until(t))
            if bound <= t:
                return 0
        period = policy.monitor_period_s
        since = policy.monitor_timer
        n = 0
        now = t
        while now < bound:
            since += epoch_s
            if since >= period:
                break  # this epoch fires the monitor: leave it dynamic
            n += 1
            now += epoch_s
        return n

    def _stable_span_window(self, clock: SimClock, n: int,
                            bandwidth: float, row_miss_rate: float,
                            churn: bool, samples: List[EpochSample],
                            dram_energy: float, baseline_energy: float,
                            residency: ResidencyStats,
                            ) -> Tuple[float, float]:
        """Execute *n* stable stepped epochs as one batch.

        The planner proved that across these epochs ``apply`` is a
        strict no-op, the operating point is constant, KSM is idle, no
        fault rule is live, and the monitor timer cannot reach its
        period — so a stepped epoch reduces to the timer tick
        (:meth:`~repro.core.daemon.GreenDIMMDaemon.tick_quiescent`, the
        bit-exact mirror of ``step`` below the period), the sample, and
        the energy sums.  Without churn those collapse to the same
        batched ``np.add.accumulate`` chains the quiescent fast path
        uses; with churn the real churn routine still runs every epoch
        (preserving the RNG stream) and only the sample template is
        refreshed when it moves memory — the span needs no early close
        because churn cannot arm the timer or un-no-op ``apply`` (the
        caller required strict owner steadiness for churn spans).

        Returns the updated ``(dram_energy, baseline_energy)``.
        """
        sim = self.sim
        system = self.system
        mm = system.mm
        policy = system.policy
        epoch_s = clock.epoch_s
        stats = sim.ff_stats
        stats.spans_stable += 1
        baseline_w = self._baseline_power_w(bandwidth, row_miss_rate)
        active_res = min(1.0, bandwidth / PEAK_DRAM_BANDWIDTH_BYTES_PER_S)
        if TRACER.enabled:
            TRACER.event("span.enter", t_s=clock.now_s, epochs=n,
                         churn=churn)
        if churn:
            template = None
            for _ in range(n):
                t = clock.now_s
                system.advance_time(t)
                free_before = mm.free_pages
                sim._pinned_churn(t, epoch_s)
                if template is None or mm.free_pages != free_before:
                    template = self._sample(t, bandwidth, row_miss_rate)
                policy.tick_quiescent(epoch_s)
                samples.append(template._replace(time_s=t))
                dram_energy += template.dram_power_w * epoch_s
                baseline_energy += baseline_w * epoch_s
                residency.add_span(epoch_s, active_res,
                                   template.dpd_fraction)
                clock.tick()
        else:
            system.advance_time(clock.now_s)
            template = self._sample(clock.now_s, bandwidth, row_miss_rate)
            power_w = template.dram_power_w
            dpd = template.dpd_fraction
            period = policy.monitor_period_s
            if n < 48:
                # Short span: the scalar chain beats the numpy batch's
                # fixed setup cost (same crossover as the quiescent
                # path).  Same float ops either way.
                append = samples.append
                since = policy.monitor_timer
                now = clock.now_s
                for _ in range(n):
                    since += epoch_s
                    if since >= period:
                        since = 0.0  # unreachable: the planner capped n
                    append(template._replace(time_s=now))
                    dram_energy += power_w * epoch_s
                    baseline_energy += baseline_w * epoch_s
                    now += epoch_s
                policy.monitor_timer = since
                clock.now_s = now
            else:
                times, final = batched_times(clock.now_s, epoch_s, n)
                emit_replicated(samples, times, template)
                dram_energy = accumulate_energy(
                    dram_energy, power_w * epoch_s, n)
                baseline_energy = accumulate_energy(
                    baseline_energy, baseline_w * epoch_s, n)
                policy.monitor_timer = monitor_timer_after(
                    policy.monitor_timer, epoch_s, period, n)
                clock.now_s = final
            # One closed-form span (constant operating point): equals
            # the per-epoch sum up to float rounding, the same approx
            # contract the quiescent path's residency carries.
            residency.add_span(n * epoch_s, active_res, dpd)
        stats.epochs_stepped += n
        stats.epochs_batched += n
        if TRACER.enabled:
            TRACER.event("span.exit", t_s=clock.now_s, epochs=n)
        return dram_energy, baseline_energy

    # --- the unified run loop ---------------------------------------------

    def begin(self, source: WorkloadSource, epoch_s: float,
              warmup_s: float = 0.0,
              pinned_churn: bool = True) -> KernelRunState:
        """Prepare *source*, spin up warmup, and open a measured span.

        Performs exactly the pre-loop work :meth:`run` used to do —
        ``prepare``, warmup stepping, the stats reset — and returns the
        paused :class:`KernelRunState` positioned at t=0.
        """
        if epoch_s <= 0:
            raise ConfigurationError("epoch must be positive")
        system = self.system
        source.prepare()
        t = -warmup_s
        while t < 0:
            system.step(t, epoch_s)
            t += epoch_s
        self.reset_stats()
        duration = source.duration_s
        use_ff = self._fast_forward_usable(pinned_churn, epoch_s)
        if TRACER.enabled:
            TRACER.event("kernel.run_start", t_s=0.0,
                         source=type(source).__name__,
                         duration_s=duration, epoch_s=epoch_s,
                         warmup_s=warmup_s, fast_forward=use_ff)
        return KernelRunState(
            source=source, epoch_s=epoch_s, pinned_churn=pinned_churn,
            use_ff=use_ff, duration_s=duration, clock=SimClock(epoch_s),
            swap_stall_before=self.sim.swap.stats.stall_s)

    def advance(self, state: KernelRunState, until_s: float = math.inf,
                exact: bool = False) -> bool:
        """Execute epochs of *state* until ``duration_s`` or *until_s*.

        The default mode checks *until_s* only between loop iterations:
        a fast-forward window or stable span that starts before the
        bound still runs to its natural horizon, so the float-operation
        stream — including the closed-form residency spans and the
        window/span counters — is *identical* to an uninterrupted run
        no matter where the run is paused.  This is the snapshot
        contract: pause points are natural window boundaries.

        ``exact=True`` additionally caps windows and spans at *until_s*
        (overshooting by at most one epoch), which is what a resident
        service needs to tick an infinite-horizon source in bounded
        slices.  Exact runs are still deterministic for a fixed tick
        schedule, but their stream need not match a differently-paced
        run bit-for-bit (windows close early, splitting residency
        spans).

        Returns ``True`` once the measured span is complete.
        """
        sim = self.sim
        system = self.system
        source = state.source
        epoch_s = state.epoch_s
        pinned_churn = state.pinned_churn
        use_ff = state.use_ff
        duration = state.duration_s
        clock = state.clock
        samples = state.samples
        dram_energy = state.dram_energy
        baseline_energy = state.baseline_energy
        residency = state.residency
        cap = min(duration, until_s) if exact else duration
        stable_until = getattr(source, "stable_until", source.horizon)
        try:
            while clock.now_s < duration and clock.now_s < until_s:
                t = clock.now_s
                if use_ff:
                    wl_horizon = source.horizon(t)
                    if wl_horizon > t:
                        horizon = min(wl_horizon,
                                      quiescent_horizon(system, t))
                        if horizon > t + epoch_s:
                            end = min(horizon, cap)
                            bandwidth, row_miss = source.operating_point(t)
                            dram_energy, baseline_energy = \
                                self._fast_forward_window(
                                    clock, end, bandwidth, row_miss,
                                    pinned_churn, samples, dram_energy,
                                    baseline_energy, residency)
                            continue
                    # No quiescent window — the monitor is armed, or the
                    # one ahead is too short.  Try a *stable* span: the
                    # weaker promise that apply() no-ops and the
                    # operating point holds, capped before the monitor
                    # can fire.  With churn the span must stay a no-op
                    # while churn moves memory, which only strict owner
                    # steadiness (== the horizon's veto) guarantees.
                    stable = wl_horizon if pinned_churn else stable_until(t)
                    if stable > t:
                        n = self._plan_stable_span(t, epoch_s,
                                                   min(stable, cap))
                        if n >= 2:
                            bandwidth, row_miss = source.operating_point(t)
                            dram_energy, baseline_energy = \
                                self._stable_span_window(
                                    clock, n, bandwidth, row_miss,
                                    pinned_churn, samples, dram_energy,
                                    baseline_energy, residency)
                            continue
                system.advance_time(t)
                source.apply(t)
                if pinned_churn:
                    sim._pinned_churn(t, epoch_s)
                system.step(t, epoch_s)
                bandwidth, row_miss = source.operating_point(t)
                sample = self._sample(t, bandwidth, row_miss)
                samples.append(sample)
                dram_energy += sample.dram_power_w * epoch_s
                baseline_energy += self._baseline_power_w(
                    bandwidth, row_miss) * epoch_s
                residency.add_span(
                    epoch_s,
                    min(1.0, bandwidth / PEAK_DRAM_BANDWIDTH_BYTES_PER_S),
                    sample.dpd_fraction)
                sim.ff_stats.epochs_stepped += 1
                clock.tick()
        finally:
            state.dram_energy = dram_energy
            state.baseline_energy = baseline_energy
        return clock.now_s >= duration

    def finish(self, state: KernelRunState) -> KernelRun:
        """Close the measured span: publish stats, shape the result."""
        self._publish_ff_stats()
        residency_mod.record_run(state.residency, state.dram_energy,
                                 state.baseline_energy, state.duration_s)
        if TRACER.enabled:
            TRACER.event("kernel.run_end", t_s=state.duration_s,
                         samples=len(state.samples),
                         dram_energy_j=state.dram_energy,
                         baseline_dram_energy_j=state.baseline_energy)
        state.finished = True
        return KernelRun(samples=state.samples,
                         dram_energy_j=state.dram_energy,
                         baseline_dram_energy_j=state.baseline_energy,
                         swap_stall_s=(self.sim.swap.stats.stall_s
                                       - state.swap_stall_before),
                         duration_s=state.duration_s,
                         residency=state.residency)

    def run(self, source: WorkloadSource, epoch_s: float,
            warmup_s: float = 0.0, pinned_churn: bool = True) -> KernelRun:
        """Drive *source* from warmup to ``source.duration_s``.

        The measured span starts at t=0 with freshly reset statistics;
        warmup epochs (t < 0) step the full stack so the daemon settles,
        exactly as the pre-kernel loops did.  ``begin`` + unbounded
        ``advance`` + ``finish`` performs the identical operation
        sequence the monolithic loop did, so the golden contract holds.
        """
        state = self.begin(source, epoch_s, warmup_s=warmup_s,
                           pinned_churn=pinned_churn)
        self.advance(state)
        return self.finish(state)
