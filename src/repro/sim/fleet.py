"""Fleet-scale simulation: many servers replaying one sharded VM trace.

GreenDIMM's motivation is fleet-wide (Figure 1 argues from datacenter
memory under-utilization), but until the run loops were unified behind
:mod:`repro.sim.kernel` every study drove exactly one
:class:`~repro.sim.server.ServerSimulator`.  This module opens the
many-server scenario:

* :class:`FleetSource` generates one datacenter-scale Azure-like trace
  (capacity = servers x per-server capacity) and shards its VMs across
  the fleet by ``vm_id % num_servers`` — the round-robin placement a
  simple scheduler would produce, so shards stay statistically alike
  while individual servers still see different arrival patterns;
* :func:`run_fleet_server` replays one shard on one independent
  GreenDIMM-managed server (its own seed-derived RNG streams, so
  per-server results are identical whether the server runs alone, in a
  fleet, inline, or in a pool worker);
* :func:`run_fleet` fans the shards over the parallel runner
  (:func:`repro.runner.fan_out`) and aggregates fleet energy savings
  plus tail behavior across servers.

Everything here is deterministic given the spec: shard membership, the
per-server seeds, and the replay itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import DDR4_4GB_X8, MemoryOrganization
from repro.errors import ConfigurationError
from repro.policies.registry import DEFAULT_POLICY
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads.azure import (
    AzureTrace,
    AzureTraceGenerator,
    UtilizationSample,
    VMEvent,
)


def fleet_server_memory() -> MemoryOrganization:
    """The 16 GiB consolidation box each fleet server models."""
    return MemoryOrganization(device=DDR4_4GB_X8, channels=2,
                              dimms_per_channel=2, ranks_per_dimm=1)


@dataclass(frozen=True)
class FleetServerJob:
    """One server's share of the fleet replay (picklable for workers)."""

    index: int
    trace: AzureTrace
    epoch_s: float
    system_seed: int
    simulator_seed: int
    pinned_churn: bool
    block_bytes: int
    kernel_boot_bytes: int
    transient_failure_probability: float
    policy: str = DEFAULT_POLICY

    def describe(self) -> str:
        return f"fleet-server-{self.index}"


@dataclass(frozen=True)
class FleetServerResult:
    """Per-server aggregates shipped back from (possibly) a pool worker.

    Samples stay in the worker: a fleet replay produces hundreds of
    thousands of epochs, and the fleet-level questions (energy savings,
    tail behavior) only need these summaries.
    """

    index: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    mean_offline_blocks: float
    max_offline_blocks: int
    mean_dpd_fraction: float
    emergency_onlines: int
    epochs: int
    fast_forward_fraction: float
    vm_events: int
    #: Mean memory utilization of this server's shard (its scheduled
    #: demand, from the per-shard utilization samples).
    mean_utilization: float = 0.0

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j


@dataclass
class FleetRunResult:
    """The whole fleet's outcome, aggregated across servers."""

    servers: List[FleetServerResult]
    total_blocks_per_server: int
    #: The datacenter trace's utilization series (Figure 1's curve),
    #: carried through so fleet reports can plot demand alongside the
    #: per-server outcomes.
    fleet_samples: List[UtilizationSample] = field(default_factory=list)

    @property
    def fleet_dram_energy_j(self) -> float:
        return sum(s.dram_energy_j for s in self.servers)

    @property
    def fleet_baseline_dram_energy_j(self) -> float:
        return sum(s.baseline_dram_energy_j for s in self.servers)

    @property
    def fleet_dram_energy_saving(self) -> float:
        baseline = self.fleet_baseline_dram_energy_j
        if baseline <= 0:
            return 0.0
        return 1.0 - self.fleet_dram_energy_j / baseline

    @property
    def worst_server_saving(self) -> float:
        """The tail: the server that benefited least."""
        return min((s.dram_energy_saving for s in self.servers),
                   default=0.0)

    @property
    def best_server_saving(self) -> float:
        return max((s.dram_energy_saving for s in self.servers),
                   default=0.0)

    @property
    def p95_max_offline_blocks(self) -> int:
        """95th percentile of per-server peak off-lined blocks."""
        peaks = sorted(s.max_offline_blocks for s in self.servers)
        if not peaks:
            return 0
        return peaks[min(len(peaks) - 1, int(0.95 * (len(peaks) - 1)))]

    @property
    def total_emergency_onlines(self) -> int:
        return sum(s.emergency_onlines for s in self.servers)


@dataclass
class FleetSource:
    """Shards one datacenter-scale VM trace into per-server replay jobs.

    The datacenter trace is generated against the *fleet's* combined
    capacity and vCPU pool, then VMs are dealt to servers round-robin by
    ``vm_id``.  Every job carries its full configuration, so the same
    spec always expands to the same fleet regardless of where (or in
    how many processes) it runs.
    """

    num_servers: int
    duration_s: float = 24 * 3600.0
    seed: int = 7
    epoch_s: float = 5.0
    pinned_churn: bool = False
    physical_cores_per_server: int = 16
    block_bytes: int = 512 * MIB
    kernel_boot_bytes: int = 2 * GIB
    transient_failure_probability: float = 0.5
    policy: str = DEFAULT_POLICY
    trace: AzureTrace = field(init=False)

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ConfigurationError("need at least one fleet server")
        organization = fleet_server_memory()
        usable = organization.total_capacity_bytes - 3 * GIB
        self.trace = AzureTraceGenerator(
            capacity_bytes=usable * self.num_servers,
            physical_cores=(self.physical_cores_per_server
                            * self.num_servers),
            duration_s=self.duration_s, seed=self.seed).generate()

    def shard(self, index: int) -> AzureTrace:
        """Server *index*'s slice of the datacenter trace.

        The shard carries its own utilization series, not an empty one:
        per-shard samples are recomputed exactly by replaying the
        shard's events at the fleet's sample times (departures land
        before arrivals at a boundary, matching the generator), so the
        shards' ``used_bytes`` partition the fleet's at every sample
        and per-server reports can plot utilization like Figure 1.
        """
        events = [e for e in self.trace.events
                  if e.instance.vm_id % self.num_servers == index]
        per_server = self.trace.capacity_bytes // self.num_servers
        return AzureTrace(events=events,
                          samples=self._shard_samples(events),
                          capacity_bytes=per_server)

    def _shard_samples(self, events: List[VMEvent]) -> List[UtilizationSample]:
        """The utilization series these *events* induce, sampled at the
        fleet trace's boundaries."""
        samples: List[UtilizationSample] = []
        cursor = 0
        used = 0
        vcpus = 0
        for fleet_sample in self.trace.samples:
            now = fleet_sample.time_s
            while cursor < len(events) and events[cursor].time_s <= now:
                vm_type = events[cursor].instance.vm_type
                if events[cursor].kind == "arrive":
                    used += vm_type.memory_bytes
                    vcpus += vm_type.vcpus
                else:
                    used -= vm_type.memory_bytes
                    vcpus -= vm_type.vcpus
                cursor += 1
            samples.append(UtilizationSample(
                time_s=now, used_bytes=used, vcpus_used=vcpus))
        return samples

    def jobs(self) -> List[FleetServerJob]:
        """One replay job per server, seeds derived from the fleet seed."""
        return [FleetServerJob(
            index=index,
            trace=self.shard(index),
            epoch_s=self.epoch_s,
            system_seed=self.seed + 1000 * (index + 1),
            simulator_seed=self.seed + 1000 * (index + 1) + 1,
            pinned_churn=self.pinned_churn,
            block_bytes=self.block_bytes,
            kernel_boot_bytes=self.kernel_boot_bytes,
            transient_failure_probability=self.transient_failure_probability,
            policy=self.policy,
        ) for index in range(self.num_servers)]


def run_fleet_server(job: FleetServerJob) -> FleetServerResult:
    """Replay one shard on one server (module-level: pool-picklable)."""
    system = GreenDIMMSystem(
        organization=fleet_server_memory(),
        config=GreenDIMMConfig(block_bytes=job.block_bytes),
        kernel_boot_bytes=job.kernel_boot_bytes,
        transient_failure_probability=job.transient_failure_probability,
        policy=job.policy,
        seed=job.system_seed)
    simulator = ServerSimulator(system, seed=job.simulator_seed)
    result = simulator.run_vm_trace(job.trace, epoch_s=job.epoch_s,
                                    pinned_churn=job.pinned_churn)
    return FleetServerResult(
        index=job.index,
        dram_energy_j=result.dram_energy_j,
        baseline_dram_energy_j=result.baseline_dram_energy_j,
        mean_offline_blocks=result.mean_offline_blocks,
        max_offline_blocks=result.max_offline_blocks,
        mean_dpd_fraction=result.mean_dpd_fraction,
        emergency_onlines=result.emergency_onlines,
        epochs=len(result.samples),
        fast_forward_fraction=simulator.ff_stats.fast_forward_fraction,
        vm_events=len(job.trace.events),
        mean_utilization=job.trace.mean_utilization)


def run_fleet(source: FleetSource, workers: int = 1,
              metrics: Optional[object] = None) -> FleetRunResult:
    """Run every server of *source* through the parallel runner.

    ``workers > 1`` fans the shards over a process pool via
    :func:`repro.runner.fan_out`; results are identical either way
    because each server is seeded independently.
    """
    from repro.runner import fan_out

    results = fan_out(run_fleet_server, source.jobs(), workers=workers,
                      metrics=metrics, label=lambda job: job.describe())
    organization = fleet_server_memory()
    blocks = organization.total_capacity_bytes // source.block_bytes
    fleet = FleetRunResult(servers=list(results),
                           total_blocks_per_server=blocks,
                           fleet_samples=list(source.trace.samples))
    if metrics is not None:
        for server in fleet.servers:
            metrics.emit(
                "fleet_server", index=server.index,
                vm_events=server.vm_events,
                dram_energy_saving=server.dram_energy_saving,
                mean_offline_blocks=server.mean_offline_blocks,
                max_offline_blocks=server.max_offline_blocks,
                mean_dpd_fraction=server.mean_dpd_fraction,
                emergency_onlines=server.emergency_onlines,
                mean_utilization=server.mean_utilization)
        metrics.emit(
            "fleet_end", servers=len(fleet.servers),
            fleet_dram_energy_saving=fleet.fleet_dram_energy_saving,
            worst_server_saving=fleet.worst_server_saving,
            p95_max_offline_blocks=fleet.p95_max_offline_blocks,
            total_emergency_onlines=fleet.total_emergency_onlines)
    return fleet


#: Reverse index for quick lookups in reports/tests.
def server_by_index(result: FleetRunResult) -> Dict[int, FleetServerResult]:
    return {s.index: s for s in result.servers}


# --- resident-fleet construction and elastic resharding ----------------------


def fleet_server_spec(index: int, seed: int = 7,
                      policy: str = DEFAULT_POLICY,
                      enable_ksm: bool = False,
                      block_bytes: int = 512 * MIB,
                      kernel_boot_bytes: int = 2 * GIB,
                      transient_failure_probability: float = 0.5):
    """The snapshot spec for fleet server *index*.

    Seeds follow :meth:`FleetSource.jobs` exactly (``seed + 1000 *
    (index + 1)`` for the system, ``+ 1`` for the simulator), so a
    resident service server is the same stochastic object as a batch
    fleet-replay server — and, being a
    :class:`~repro.sim.snapshot.ServerSpec`, it can be checkpointed,
    shipped, and rebuilt anywhere.
    """
    from repro.sim.snapshot import ServerSpec

    return ServerSpec(
        policy=policy,
        seed=seed + 1000 * (index + 1),
        sim_seed=seed + 1000 * (index + 1) + 1,
        organization="fleet",
        enable_ksm=enable_ksm,
        transient_failure_probability=transient_failure_probability,
        kernel_boot_bytes=kernel_boot_bytes,
        config={"block_bytes": block_bytes})


def shard_assignment(num_servers: int,
                     num_workers: int) -> Dict[int, int]:
    """Server index -> worker index, round-robin.

    The deterministic placement both the resident service's initial
    layout and checkpoint-based elastic resharding use: to go from *n*
    to *m* workers, every server is checkpointed, the assignment is
    recomputed for *m*, and each snapshot is restored on its new worker
    — placement is a pure function of the shape, never of history.
    """
    if num_servers < 1 or num_workers < 1:
        raise ConfigurationError("need at least one server and one worker")
    return {index: index % num_workers for index in range(num_servers)}
