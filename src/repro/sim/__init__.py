"""Simulation layer: performance model, epoch server simulator, experiments.

Two granularities cooperate:

* the cycle-approximate :mod:`repro.memctrl` controller covers
  microsecond-scale questions (low-power residency, wake-up penalties);
* the epoch simulator here covers the seconds-to-hours dynamics the
  GreenDIMM daemon lives in (footprint changes, on/off-lining, KSM).

The analytic performance model bridges them: it converts memory-system
operating points and daemon activity into execution-time factors.
"""

from repro.sim.perfmodel import (
    MemorySystemPoint,
    PerformanceModel,
    interleaved_point,
    non_interleaved_point,
)
from repro.sim.server import (
    EpochSample,
    MixRunResult,
    ServerSimulator,
    VMTraceRunResult,
    WorkloadRunResult,
)
from repro.sim.experiment import (
    PolicyResult,
    evaluate_policies,
    normalized,
    POLICIES,
)

__all__ = [
    "MemorySystemPoint",
    "PerformanceModel",
    "interleaved_point",
    "non_interleaved_point",
    "ServerSimulator",
    "WorkloadRunResult",
    "MixRunResult",
    "VMTraceRunResult",
    "EpochSample",
    "PolicyResult",
    "evaluate_policies",
    "normalized",
    "POLICIES",
]
