"""Simulation layer: performance model, epoch server simulator, experiments.

Two granularities cooperate:

* the cycle-approximate :mod:`repro.memctrl` controller covers
  microsecond-scale questions (low-power residency, wake-up penalties);
* the epoch simulator here covers the seconds-to-hours dynamics the
  GreenDIMM daemon lives in (footprint changes, on/off-lining, KSM).

The analytic performance model bridges them: it converts memory-system
operating points and daemon activity into execution-time factors.
"""

from repro.sim.experiment import (
    POLICIES,
    PolicyResult,
    evaluate_policies,
    normalized,
)
from repro.sim.fleet import (
    FleetRunResult,
    FleetServerJob,
    FleetServerResult,
    FleetSource,
    run_fleet,
    run_fleet_server,
)
from repro.sim.kernel import (
    EpochKernel,
    EpochSample,
    KernelRun,
    MixSource,
    ProfileSource,
    TraceSource,
    WorkloadSource,
    fast_forward_default,
    fast_forward_scope,
    set_fast_forward_default,
)
from repro.sim.perfmodel import (
    MemorySystemPoint,
    PerformanceModel,
    interleaved_point,
    non_interleaved_point,
)
from repro.sim.server import (
    MixRunResult,
    ServerSimulator,
    VMTraceRunResult,
    WorkloadRunResult,
)

__all__ = [
    "EpochKernel",
    "EpochSample",
    "FleetRunResult",
    "FleetServerJob",
    "FleetServerResult",
    "FleetSource",
    "KernelRun",
    "MemorySystemPoint",
    "MixRunResult",
    "MixSource",
    "PerformanceModel",
    "POLICIES",
    "PolicyResult",
    "ProfileSource",
    "ServerSimulator",
    "TraceSource",
    "VMTraceRunResult",
    "WorkloadRunResult",
    "WorkloadSource",
    "evaluate_policies",
    "fast_forward_default",
    "fast_forward_scope",
    "interleaved_point",
    "non_interleaved_point",
    "normalized",
    "run_fleet",
    "run_fleet_server",
    "set_fast_forward_default",
]
