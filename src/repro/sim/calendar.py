"""A heap-backed calendar of future simulation events.

The fast-forward layer needs one question answered per stepped epoch:
*when is the next time anything can happen?*  Before this module each
:class:`~repro.sim.kernel.WorkloadSource` re-derived that bound by
rescanning its footprint traces (and the fault injector rescanned its
rule list) every epoch.  All of those timestamps are known up front —
footprint flat-run ends and fault-rule window starts are static — so
they can be pushed into a min-heap once and consumed with O(log n) pops
as simulated time advances past them.

The calendar is *value-preserving* by construction: ``next_after(t)``
returns exactly ``min(e for e in events if e > t)`` (or ``inf``), the
same float the rescans produced, so fast-forward window boundaries — and
therefore the bit-for-bit golden contract — are unchanged.

Queries are expected to be time-monotonic within a run.  A query that
moves backwards (the same source object driven through a second run)
rebuilds the heap from the immutable seed events, so reuse is safe, just
not O(log n) for that one call.
"""

from __future__ import annotations

import heapq
import math
from typing import Iterable


class EventCalendar:
    """Min-heap of future event timestamps with monotonic consumption."""

    __slots__ = ("_events", "_heap", "_last_query_s")

    def __init__(self, times: Iterable[float] = ()):
        self._events = tuple(sorted(times))
        # A sorted list is already a valid binary heap.
        self._heap = list(self._events)
        self._last_query_s = -math.inf

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, time_s: float) -> None:
        """Add one event (events scheduled in the past are inert)."""
        self._events = tuple(sorted(self._events + (time_s,)))
        heapq.heappush(self._heap, time_s)

    def next_after(self, now_s: float) -> float:
        """Earliest event strictly after *now_s* (``inf`` when none).

        Events at or before *now_s* are popped for good — the next query
        is expected at a time >= *now_s* and can never need them again.
        """
        if now_s < self._last_query_s:
            self._heap = list(self._events)
        self._last_query_s = now_s
        heap = self._heap
        while heap and heap[0] <= now_s:
            heapq.heappop(heap)
        return heap[0] if heap else math.inf


def intersect_horizons(now_s: float, *bounds: float) -> float:
    """Merge several horizon bounds under veto semantics.

    Every horizon in this codebase speaks the same protocol: a value
    strictly greater than *now_s* promises nothing happens before it,
    while a value at or below *now_s* is a veto ("activity right now").
    The intersection is the smallest promise — unless any input vetoes,
    in which case the merged horizon vetoes too.  The span planner uses
    this to fold the workload-side stability bound, the fault injector's
    ``quiescent_until``, and the run duration into one span end.
    """
    merged = math.inf
    for bound in bounds:
        if bound <= now_s:
            return now_s
        if bound < merged:
            merged = bound
    return merged
