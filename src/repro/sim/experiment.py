"""Policy-comparison experiments (Figures 9 and 10).

For one workload profile this evaluates the 2x4 matrix the paper plots:
{with, without} memory interleaving x {self-refresh only, RAMZzz, PASR,
GreenDIMM}, producing DRAM and system energies normalized the same way
the paper normalizes ("w/o intlv srf_only" = 1.0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.baselines.base import BaselineEstimate, resident_ranks_for
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import MemoryOrganization, spec_server_memory
from repro.policies.registry import analytical_policy_names, create_estimator
from repro.policies.schema import PolicyRow
from repro.power.model import DRAMPowerModel, RankPowerProfile
from repro.power.system import SystemPowerModel
from repro.sim.perfmodel import (
    PerformanceModel,
    interleaved_point,
    non_interleaved_point,
)
from repro.sim.server import ServerSimulator
from repro.workloads.profiles import WorkloadProfile

#: The Figure 9/10 matrix's policy axis, in evaluation order.  Derived
#: from the shared registry (:mod:`repro.policies.registry`) so the
#: figure suite and ``repro tournament`` can never disagree on names;
#: no policy object is instantiated to produce this tuple.
POLICIES = analytical_policy_names() + ("greendimm",)


@dataclass(frozen=True)
class PolicyResult:
    """One cell of the Figure 9/10 matrix."""

    policy: str
    interleaved: bool
    runtime_s: float
    dram_power_w: float
    dram_energy_j: float
    system_energy_j: float
    overhead_fraction: float = 0.0

    @property
    def key(self) -> Tuple[str, bool]:
        return (self.policy, self.interleaved)

    def to_row(self, scenario: Optional[str] = None) -> PolicyRow:
        """Flatten into the shared :class:`~repro.policies.schema.PolicyRow`.

        The Figure 9/10 matrix has no explicit scenario axis, so the
        operating point stands in for it unless the caller names one.
        """
        return PolicyRow(
            policy=self.policy,
            scenario=scenario or ("intlv" if self.interleaved else "no-intlv"),
            runtime_s=self.runtime_s,
            dram_power_w=self.dram_power_w,
            dram_energy_j=self.dram_energy_j,
            system_energy_j=self.system_energy_j,
            overhead_fraction=self.overhead_fraction)


def _runtimes(profile: WorkloadProfile, organization: MemoryOrganization,
              perf: PerformanceModel, n_copies: int) -> Dict[bool, float]:
    """Base runtime with and without interleaving (before policy factors).

    Latency-critical services run for a fixed wall time at a fixed load;
    a slower memory system degrades their tail latency, not their
    duration, so their energy comparison is purely a power comparison.
    """
    if profile.latency_critical:
        return {True: profile.duration_s, False: profile.duration_s}
    on = interleaved_point(organization)
    resident = resident_ranks_for(profile.peak_footprint_bytes * n_copies,
                                  organization, interleaved=False)
    off = non_interleaved_point(organization, resident_ranks=resident)
    ratio = perf.cpi(profile, off, n_copies) / perf.cpi(profile, on, n_copies)
    return {True: profile.duration_s, False: profile.duration_s * ratio}


def _greendimm_mean_dpd(profile: WorkloadProfile,
                        organization: MemoryOrganization,
                        n_copies: int, seed: int) -> Tuple[float, float, float]:
    """Run the real daemon once; returns (mean dpd fraction, offline
    events, online events)."""
    system = GreenDIMMSystem(organization=organization, seed=seed)
    simulator = ServerSimulator(system, seed=seed)
    result = simulator.run_workload(profile, n_copies=n_copies)
    mean_dpd = (sum(s.dpd_fraction for s in result.samples)
                / max(1, len(result.samples)))
    return mean_dpd, result.offline_events, result.online_events


def evaluate_policies(profile: WorkloadProfile,
                      organization: Optional[MemoryOrganization] = None,
                      n_copies: int = 1,
                      perf: Optional[PerformanceModel] = None,
                      system_power: Optional[SystemPowerModel] = None,
                      seed: int = 11,
                      ) -> Dict[Tuple[str, bool], PolicyResult]:
    """Evaluate all four policies, with and without interleaving."""
    organization = organization or spec_server_memory()
    perf = perf or PerformanceModel()
    system_power = system_power or SystemPowerModel()
    power_model = DRAMPowerModel(organization)
    runtimes = _runtimes(profile, organization, perf, n_copies)
    cpu_util = profile.cpu_utilization
    results: Dict[Tuple[str, bool], PolicyResult] = {}

    baselines = {name: create_estimator(name)
                 for name in analytical_policy_names()}
    for interleaved in (True, False):
        for name, policy in baselines.items():
            estimate: BaselineEstimate = policy.estimate(
                profile, organization, interleaved, n_copies)
            dram_w = (power_model.power(estimate.rank_profiles).total_w
                      + estimate.extra_power_w)
            runtime = runtimes[interleaved] * estimate.runtime_factor
            system_w = system_power.power_w(cpu_util, dram_w)
            results[(name, interleaved)] = PolicyResult(
                policy=name, interleaved=interleaved, runtime_s=runtime,
                dram_power_w=dram_w, dram_energy_j=dram_w * runtime,
                system_energy_j=system_w * runtime)

    mean_dpd, off_events, on_events = _greendimm_mean_dpd(
        profile, organization, n_copies, seed)
    overhead = perf.greendimm_overhead_fraction(
        profile, off_events, on_events, profile.duration_s)
    srf = baselines["srf_only"]
    for interleaved in (True, False):
        # GreenDIMM inherits the operating point's traffic shape and adds
        # sub-array deep power-down for the off-lined capacity.
        estimate = srf.estimate(profile, organization, interleaved, n_copies)
        profiles = []
        for rank_profile in estimate.rank_profiles:
            profiles.append(RankPowerProfile(
                state_residency=dict(rank_profile.state_residency),
                bandwidth_bytes_per_s=rank_profile.bandwidth_bytes_per_s,
                row_miss_rate=rank_profile.row_miss_rate,
                dpd_fraction=min(1.0, mean_dpd)))
        dram_w = power_model.power(profiles).total_w
        runtime_overhead = 0.0 if profile.latency_critical else overhead
        runtime = runtimes[interleaved] * (1.0 + runtime_overhead)
        system_w = system_power.power_w(cpu_util, dram_w)
        results[("greendimm", interleaved)] = PolicyResult(
            policy="greendimm", interleaved=interleaved, runtime_s=runtime,
            dram_power_w=dram_w, dram_energy_j=dram_w * runtime,
            system_energy_j=system_w * runtime,
            overhead_fraction=overhead)
    return results


def normalized(results: Dict[Tuple[str, bool], PolicyResult],
               metric: str = "dram_energy_j") -> Dict[Tuple[str, bool], float]:
    """Normalize a metric to the paper's reference: w/o intlv srf_only."""
    reference = getattr(results[("srf_only", False)], metric)
    return {key: getattr(r, metric) / reference for key, r in results.items()}
