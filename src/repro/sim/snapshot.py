"""Versioned checkpoint/restore of a full :class:`ServerSimulator`.

A snapshot is two halves:

* a :class:`ServerSpec` — the JSON-able *construction recipe* (policy,
  seeds, organization, config overrides, fault plan, churn parameters).
  Restore builds a fresh simulator from the spec, reproducing the exact
  component graph — including every ``random.Random`` instance in the
  constructor-defined draw order — before any state is loaded;
* a *state tree* — the live mutable state of every component, gathered
  by the ``state_dict()`` methods and pickled **in one call**.

The one-pickle rule is what makes restore exact: components share
objects across their state dicts (``PageExtent`` instances appear in
the memory manager's owner table, the per-block extent lists, and the
extent pool; KSM region content is shared with the trace source; the
daemon and the GreenDIMM policy share one ``DaemonStats``).  Every
``state_dict()`` therefore returns **live references**, the snapshot
layer assembles the whole tree, and a single immediate
``pickle.dumps`` preserves the shared identities.  Restore is the
mirror image: ``load_state_dict()`` assigns state *onto the existing
component instances* — never replacing the components themselves — so
all cross-wiring (daemon -> selector, sysfs -> hot-plug, policy ->
system, fault wrappers -> cores) survives.

RNG streams follow one rule everywhere: ``state_dict`` stores
``rng.getstate()``, ``load_state_dict`` calls ``rng.setstate()``.  That
covers the simulator's churn RNG, the hot-plug failure RNG, the
daemon's selector RNG, KSM's scan RNG, and both treap priority RNGs.

A mid-run checkpoint additionally carries the paused
:class:`~repro.sim.kernel.KernelRunState`.  The concrete workload
sources drop their simulator back-reference when pickled
(``__getstate__``); :func:`restore` re-binds ``source.sim`` to the
rebuilt simulator.  Because :meth:`EpochKernel.advance` only honours a
pause bound between loop iterations (fast-forward windows and stable
spans always run to their natural horizon), a snapshot taken at any
pause point and continued elsewhere replays the *identical* float
stream — energies, samples, and residency match an uninterrupted run
bit for bit.  ``tests/test_snapshot.py`` pins that contract for every
registered policy, mid-fault-storm and under pinned churn.
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.system import GreenDIMMSystem
from repro.dram.organization import spec_server_memory
from repro.errors import SnapshotError
from repro.faults.plan import FaultPlan
from repro.sim.kernel import KernelRunState
from repro.sim.server import ServerSimulator

PathLike = Union[str, pathlib.Path]

#: Bump on any incompatible change to the state tree's shape.  Restore
#: refuses versions it does not know rather than guessing.
SNAPSHOT_VERSION = 1

#: Named memory organizations a spec may reference (JSON carries the
#: name, not the object).  ``fleet`` matches
#: :func:`repro.sim.fleet.fleet_server_memory`.
_ORGANIZATIONS = {
    "spec": spec_server_memory,
}


def _fleet_server_memory():
    from repro.sim.fleet import fleet_server_memory

    return fleet_server_memory()


def _azure_server_memory():
    from repro.dram.organization import azure_server_memory

    return azure_server_memory()


_ORGANIZATIONS["fleet"] = _fleet_server_memory
_ORGANIZATIONS["azure"] = _azure_server_memory


@dataclass(frozen=True)
class ServerSpec:
    """A JSON-able recipe that rebuilds one simulator from scratch.

    :meth:`build` reproduces the constructor-time component graph of
    ``GreenDIMMSystem`` + ``ServerSimulator`` exactly (same seeds, same
    RNG draw order, same wrapper topology), which is the precondition
    for :func:`restore` loading a state tree onto it.
    """

    policy: Optional[str] = None
    seed: int = 42
    sim_seed: int = 5
    organization: str = "spec"
    enable_ksm: bool = False
    movable_fraction: float = 0.85
    transient_failure_probability: float = 0.85
    kernel_boot_bytes: Optional[int] = None
    config: Dict[str, object] = field(default_factory=dict)
    fault_plan: Optional[Dict[str, object]] = None
    pinned_churn_rate_per_s: float = 0.3
    pinned_lifetime_s: float = 45.0
    fast_forward: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.organization not in _ORGANIZATIONS:
            raise SnapshotError(
                f"unknown organization {self.organization!r}; known: "
                f"{', '.join(sorted(_ORGANIZATIONS))}")

    # --- construction -------------------------------------------------------

    def _config(self) -> Optional[GreenDIMMConfig]:
        if not self.config:
            return None
        overrides = dict(self.config)
        selection = overrides.get("selection")
        if isinstance(selection, str):
            overrides["selection"] = SelectionPolicy(selection)
        return GreenDIMMConfig(**overrides)  # type: ignore[arg-type]

    def build(self) -> ServerSimulator:
        """A fresh simulator at t=0, exactly as the spec describes."""
        plan = (FaultPlan.from_dict(self.fault_plan)
                if self.fault_plan is not None else None)
        kwargs: Dict[str, object] = {}
        if self.kernel_boot_bytes is not None:
            kwargs["kernel_boot_bytes"] = self.kernel_boot_bytes
        system = GreenDIMMSystem(
            organization=_ORGANIZATIONS[self.organization](),
            config=self._config(),
            movable_fraction=self.movable_fraction,
            enable_ksm=self.enable_ksm,
            transient_failure_probability=self.transient_failure_probability,
            fault_plan=plan,
            policy=self.policy,
            seed=self.seed,
            **kwargs)  # type: ignore[arg-type]
        return ServerSimulator(
            system,
            pinned_churn_rate_per_s=self.pinned_churn_rate_per_s,
            pinned_lifetime_s=self.pinned_lifetime_s,
            seed=self.sim_seed,
            fast_forward=self.fast_forward)

    # --- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        out = dataclasses.asdict(self)
        # Drop defaults for a compact, forward-friendly rendering.
        for name, value in list(out.items()):
            if value == getattr(type(self), "__dataclass_fields__")[
                    name].default:
                del out[name]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ServerSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SnapshotError(
                f"unknown spec field(s): {', '.join(sorted(unknown))}")
        return cls(**data)  # type: ignore[arg-type]


@dataclass
class RestoredSnapshot:
    """What :func:`restore` hands back."""

    sim: ServerSimulator
    run_state: Optional[KernelRunState]
    spec: Optional[ServerSpec]


def capture(sim: ServerSimulator,
            run_state: Optional[KernelRunState] = None,
            spec: Optional[ServerSpec] = None) -> bytes:
    """Serialize *sim* (and an optionally paused run) to bytes.

    The state tree is assembled from live references and pickled in a
    single call, preserving every shared-object identity (see the
    module docstring).  With *spec* attached the snapshot is
    self-contained: :func:`restore` can rebuild the simulator from
    nothing.  Without it, the caller must supply a structurally
    identical simulator at restore time.
    """
    if run_state is not None and run_state.source.sim is not sim:
        raise SnapshotError("run state belongs to a different simulator")
    payload = {
        "version": SNAPSHOT_VERSION,
        "spec": spec.to_dict() if spec is not None else None,
        "server": sim.state_dict(),
        "run": run_state,
    }
    return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)


def restore(data: bytes,
            sim: Optional[ServerSimulator] = None) -> RestoredSnapshot:
    """Rebuild a simulator (and paused run) from :func:`capture` bytes.

    Without *sim*, the embedded spec is built into a fresh simulator
    first; state is then loaded in place and the paused run's source is
    re-bound to the restored simulator.  Continuing the run from here
    is bit-for-bit identical to never having paused.
    """
    try:
        payload = pickle.loads(data)
    except Exception as err:
        raise SnapshotError(f"undecodable snapshot: {err}") from err
    if not isinstance(payload, dict) or "version" not in payload:
        raise SnapshotError("not a simulator snapshot")
    version = payload["version"]
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot version {version!r} unsupported "
            f"(this build reads version {SNAPSHOT_VERSION})")
    spec = (ServerSpec.from_dict(payload["spec"])
            if payload["spec"] is not None else None)
    if sim is None:
        if spec is None:
            raise SnapshotError(
                "snapshot carries no spec; pass the simulator to restore "
                "into")
        sim = spec.build()
    sim.load_state_dict(payload["server"])
    run_state: Optional[KernelRunState] = payload["run"]
    if run_state is not None:
        run_state.source.sim = sim
    return RestoredSnapshot(sim=sim, run_state=run_state, spec=spec)


def save(path: PathLike, sim: ServerSimulator,
         run_state: Optional[KernelRunState] = None,
         spec: Optional[ServerSpec] = None) -> None:
    """:func:`capture` to a file (written atomically via a temp name)."""
    target = pathlib.Path(path)
    data = capture(sim, run_state=run_state, spec=spec)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(data)
    tmp.replace(target)


def load(path: PathLike,
         sim: Optional[ServerSimulator] = None) -> RestoredSnapshot:
    """:func:`restore` from a file."""
    try:
        data = pathlib.Path(path).read_bytes()
    except OSError as err:
        raise SnapshotError(f"cannot read snapshot: {err}") from err
    return restore(data, sim=sim)
