"""Epoch-granularity server simulation.

Drives a :class:`repro.core.GreenDIMMSystem` with either a single
workload profile (SPEC / data-center runs), an Azure-like VM trace, or
a co-located mix, advancing the OS, KSM, and GreenDIMM daemon once per
epoch and integrating DRAM/system energy as it goes.

The run loops themselves live in :mod:`repro.sim.kernel`: each
``run_*`` method here builds the matching
:class:`~repro.sim.kernel.WorkloadSource` and hands it to one
:class:`~repro.sim.kernel.EpochKernel`, which owns the clock, warmup,
quiescence fast-forward gating (see :mod:`repro.sim.fastforward`),
sampling, and stats lifecycle.  Fast-forwarded runs are bit-for-bit
identical to per-epoch stepping (pass ``fast_forward=False`` to force
the reference path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.errors import AllocationError
from repro.obs.residency import ResidencyStats
from repro.os.page import OwnerKind
from repro.os.swap import SwapSpace
from repro.power.idd import DPD_RESIDUAL_FRACTION, SPARE_ROW_FRACTION
from repro.power.system import SystemPowerModel
from repro.sim.fastforward import FastForwardStats
from repro.sim.kernel import (
    SWAP_IN_RESERVE_PAGES,
    EpochKernel,
    EpochSample,
    MixSource,
    ProfileSource,
    TraceSource,
    fast_forward_default,
)
from repro.sim.perfmodel import PerformanceModel
from repro.workloads.azure import AzureTrace
from repro.workloads.profiles import WorkloadProfile

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem

__all__ = [
    "EpochSample",
    "MixRunResult",
    "ServerSimulator",
    "VMTraceRunResult",
    "WorkloadRunResult",
]


@dataclass
class WorkloadRunResult:
    """Outcome of one profile run under GreenDIMM."""

    profile_name: str
    elapsed_s: float
    samples: List[EpochSample]
    offline_events: int
    online_events: int
    ebusy_failures: int
    eagain_failures: int
    offlined_bytes_total: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    overhead_fraction: float
    swap_shortfall_pages: int
    #: Capacity-weighted time per DRAM power state over the measured span.
    residency: ResidencyStats = field(default_factory=ResidencyStats)

    @property
    def runtime_s(self) -> float:
        """Wall time including GreenDIMM's interference."""
        return self.elapsed_s * (1.0 + self.overhead_fraction)

    @property
    def mean_offline_blocks(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.offline_blocks for s in self.samples) / len(self.samples)

    def mean_offlined_bytes(self, block_bytes: int) -> float:
        """Mean off-lined capacity over the run (Figure 6's metric)."""
        return self.mean_offline_blocks * block_bytes

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j


@dataclass
class VMTraceRunResult:
    """Outcome of an Azure-trace replay (Figures 1, 12, 13)."""

    samples: List[EpochSample]
    total_blocks: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    ksm_saved_pages_final: int
    emergency_onlines: int
    #: Capacity-weighted time per DRAM power state over the measured span.
    residency: ResidencyStats = field(default_factory=ResidencyStats)

    @property
    def mean_offline_blocks(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.offline_blocks for s in self.samples) / len(self.samples)

    @property
    def max_offline_blocks(self) -> int:
        return max((s.offline_blocks for s in self.samples), default=0)

    @property
    def min_offline_blocks(self) -> int:
        return min((s.offline_blocks for s in self.samples), default=0)

    @property
    def mean_dpd_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.dpd_fraction for s in self.samples) / len(self.samples)

    @property
    def background_power_reduction(self) -> float:
        """Mean background-power reduction vs an ungated baseline.

        Gated capacity sheds its background power except the power-gate
        leakage residual and the never-gated spare rows; both factors
        come from the calibrated power model so a recalibration there
        cannot silently diverge from this summary statistic.
        """
        return (self.mean_dpd_fraction
                * (1.0 - DPD_RESIDUAL_FRACTION)
                * (1.0 - SPARE_ROW_FRACTION))

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j


@dataclass
class MixRunResult:
    """Outcome of a co-located multi-workload run."""

    profile_names: List[str]
    elapsed_s: float
    samples: List[EpochSample]
    offline_events: int
    online_events: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    overhead_by_profile: "dict[str, float]"
    swap_stall_s: float
    #: Capacity-weighted time per DRAM power state over the measured span.
    residency: ResidencyStats = field(default_factory=ResidencyStats)

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j

    @property
    def worst_overhead(self) -> float:
        return max(self.overhead_by_profile.values(), default=0.0)


@dataclass
class _PinnedExtent:
    owner_seq: int
    expires_s: float


class ServerSimulator:
    """Runs workloads/traces against one GreenDIMM-managed server.

    ``fast_forward=None`` (the default) adopts the process-wide setting
    (see :func:`repro.sim.kernel.fast_forward_default`), which is how
    ``repro run --no-fast-forward`` reaches simulators built inside
    experiment modules; pass an explicit bool to pin the path.
    """

    def __init__(self, system: "GreenDIMMSystem",
                 perf: Optional[PerformanceModel] = None,
                 system_power: Optional[SystemPowerModel] = None,
                 swap: Optional[SwapSpace] = None,
                 pinned_churn_rate_per_s: float = 0.3,
                 pinned_lifetime_s: float = 45.0,
                 seed: int = 5,
                 fast_forward: Optional[bool] = None):
        self.system = system
        self.perf = perf or PerformanceModel()
        self.system_power = system_power or SystemPowerModel()
        self.swap = swap or SwapSpace()
        self.pinned_churn_rate_per_s = pinned_churn_rate_per_s
        self.pinned_lifetime_s = pinned_lifetime_s
        self.rng = random.Random(seed)
        self._pinned: List[_PinnedExtent] = []
        self._pin_seq = 0
        #: Skip quiescent epochs analytically (results are bit-for-bit
        #: identical either way; ``False`` forces per-epoch stepping).
        self.fast_forward = (fast_forward_default() if fast_forward is None
                             else fast_forward)
        #: Fast-forward accounting of the most recent ``run_*`` call.
        self.ff_stats = FastForwardStats()
        #: The unified run-loop driver every ``run_*`` method goes through.
        self.kernel = EpochKernel(self)

    # --- shared plumbing ------------------------------------------------------

    def _resize_owner(self, owner: str, target_pages: int, now_s: float,
                      mergeable: bool = False, emergency: bool = False) -> int:
        """Grow/shrink *owner* to *target_pages* resident pages.

        Growth beyond what the free reserve can absorb spills to swap —
        the kernel cannot wait for GreenDIMM's next monitoring pass, which
        is exactly why reserves below ~10% thrash (Section 4.2).  With
        *emergency* set (hypervisor-coordinated VM placement) the daemon
        is asked to on-line blocks synchronously instead.  Shrinking
        drops swap slots first (those pages are dead copies) and frees
        resident memory for the rest.  Returns pages pushed to swap.
        """
        mm = self.system.mm
        total = mm.owner_pages(owner) + self.swap.held_for(owner)
        if target_pages > total:
            # The footprint is resident + swapped; only the delta beyond
            # both is new memory.  Swapped pages fault back in when room
            # exists.
            self._try_swap_in(owner)
            need = target_pages - total
            attempts = 2 if emergency else 1
            for _attempt in range(attempts):
                try:
                    mm.allocate(owner, need, mergeable=mergeable)
                    return 0
                except AllocationError:
                    if not emergency:
                        break
                    if not self.system.policy.emergency_online(need, now_s):
                        break
            available = max(0, mm.free_pages - 16)
            if available > 0:
                take = min(need, available)
                try:
                    mm.allocate(owner, take, mergeable=mergeable)
                    need -= take
                except AllocationError:
                    # A second failure (e.g. an injected pressure spike
                    # right after the first) leaves the whole remainder
                    # for swap rather than killing the run.
                    pass
            if need > 0:
                self.swap.swap_out(owner, need)
            return need
        if target_pages < total:
            surplus = total - target_pages
            dropped = self.swap.drop(owner, surplus)
            remaining = surplus - dropped
            if remaining > 0:
                mm.free_pages_of(owner, remaining)
        else:
            self._try_swap_in(owner)
        return 0

    def resize_owner(self, owner: str, target_pages: int, now_s: float,
                     mergeable: bool = False, emergency: bool = False) -> int:
        """Public entry for external drivers (e.g. the fault-storm
        experiment): grow/shrink *owner* through the same spill/emergency
        machinery the built-in runs use.  Returns pages pushed to swap.
        """
        self.system.advance_time(now_s)
        return self._resize_owner(owner, target_pages, now_s,
                                  mergeable=mergeable, emergency=emergency)

    def _try_swap_in(self, owner: str) -> None:
        """Fault this owner's swapped pages back in while room exists.

        Recovery is bounded by free memory: the daemon's monitor, not
        this fault path, is what brings off-lined blocks back.
        """
        held = self.swap.held_for(owner)
        if not held:
            return
        mm = self.system.mm
        take = min(held, max(0, mm.free_pages - SWAP_IN_RESERVE_PAGES))
        if take <= 0:
            return
        try:
            mm.allocate(owner, take)
        except AllocationError:
            return
        self.swap.swap_in(owner, take)

    def _pinned_churn(self, now_s: float, dt_s: float) -> None:
        """Short-lived pinned allocations that leak unmovable pages into
        movable blocks — the EBUSY source of Section 5.2."""
        for pin in list(self._pinned):
            if pin.expires_s <= now_s:
                self.system.mm.free_all(f"pin{pin.owner_seq}")
                self._pinned.remove(pin)
        expected = self.pinned_churn_rate_per_s * dt_s
        count = int(expected)
        if self.rng.random() < expected - count:
            count += 1
        for _ in range(count):
            self._pin_seq += 1
            pages = self.rng.choice((4, 8, 16, 32))
            # Most transient kernel allocations stay in ZONE_NORMAL; a
            # minority are user pages pinned in place, which is the leak
            # that contaminates movable blocks (Section 5.2).
            kind = (OwnerKind.PINNED if self.rng.random() < 0.25
                    else OwnerKind.KERNEL)
            try:
                self.system.mm.allocate(
                    f"pin{self._pin_seq}", pages, kind=kind)
            except AllocationError:
                continue
            self._pinned.append(_PinnedExtent(
                owner_seq=self._pin_seq,
                expires_s=now_s + self.rng.expovariate(1.0 / self.pinned_lifetime_s)))

    def _owner_steady(self, owner: str, target_pages: int) -> bool:
        """Would resizing *owner* to *target_pages* be a strict no-op?"""
        return (self.swap.held_for(owner) == 0
                and target_pages == self.system.mm.owner_pages(owner))

    def reset_stats(self) -> None:
        """Zero the per-run counters (kernel-owned; see
        :meth:`repro.sim.kernel.EpochKernel.reset_stats`)."""
        self.kernel.reset_stats()

    # --- checkpoint/restore ---------------------------------------------------

    def state_dict(self) -> dict:
        """The full server-side state tree: the system's, plus swap, the
        pinned-churn RNG/extents, and the fast-forward accounting."""
        return {"system": self.system.state_dict(),
                "swap": self.swap.state_dict(),
                "rng": self.rng.getstate(),
                "pinned": self._pinned,
                "pin_seq": self._pin_seq,
                "fast_forward": self.fast_forward,
                "ff_stats": self.ff_stats}

    def load_state_dict(self, state: dict) -> None:
        self.system.load_state_dict(state["system"])
        self.swap.load_state_dict(state["swap"])
        self.rng.setstate(state["rng"])
        self._pinned = state["pinned"]
        self._pin_seq = state["pin_seq"]
        self.fast_forward = state["fast_forward"]
        self.ff_stats = state["ff_stats"]

    # --- single-profile runs (SPEC / data-center) -----------------------------

    def run_workload(self, profile: WorkloadProfile, n_copies: int = 1,
                     warmup_s: float = 30.0, epoch_s: float = 1.0,
                     pinned_churn: bool = True) -> WorkloadRunResult:
        """Run *n_copies* of *profile* to completion under GreenDIMM."""
        source = ProfileSource(self, profile, n_copies)
        run = self.kernel.run(source, epoch_s=epoch_s, warmup_s=warmup_s,
                              pinned_churn=pinned_churn)

        policy = self.system.policy
        stats = policy.stats
        overhead = self.perf.greendimm_overhead_fraction(
            profile, stats.offline_events, stats.online_events,
            profile.duration_s)
        overhead += run.swap_stall_s / profile.duration_s
        # Policy-declared runtime dilation (monitoring/migration
        # interference): added only when nonzero so the daemon's float
        # stream is untouched.
        policy_overhead = policy.runtime_overhead_fraction()
        if policy_overhead:
            overhead += policy_overhead
        return WorkloadRunResult(
            profile_name=profile.name,
            elapsed_s=profile.duration_s,
            samples=run.samples,
            offline_events=stats.offline_events,
            online_events=stats.online_events,
            ebusy_failures=stats.ebusy_failures,
            eagain_failures=stats.eagain_failures,
            offlined_bytes_total=stats.offlined_bytes_total,
            dram_energy_j=run.dram_energy_j * (1.0 + overhead),
            baseline_dram_energy_j=(run.baseline_dram_energy_j
                                    * (1.0 + overhead)),
            overhead_fraction=overhead,
            swap_shortfall_pages=source.shortfall_pages,
            residency=run.residency)

    # --- VM-trace runs (Figures 1, 12, 13) --------------------------------------

    def run_vm_trace(self, trace: AzureTrace, epoch_s: float = 5.0,
                     mean_vm_bandwidth_bytes_per_s: float = 0.4e9,
                     pinned_churn: bool = True) -> VMTraceRunResult:
        """Replay an Azure-like trace against the system."""
        source = TraceSource(
            self, trace,
            mean_vm_bandwidth_bytes_per_s=mean_vm_bandwidth_bytes_per_s)
        run = self.kernel.run(source, epoch_s=epoch_s,
                              pinned_churn=pinned_churn)

        ksm = self.system.ksm
        return VMTraceRunResult(
            samples=run.samples,
            total_blocks=self.system.mm.num_blocks,
            dram_energy_j=run.dram_energy_j,
            baseline_dram_energy_j=run.baseline_dram_energy_j,
            ksm_saved_pages_final=(ksm.total_saved_pages if ksm else 0),
            emergency_onlines=self.system.policy.stats.emergency_onlines,
            residency=run.residency)

    # --- co-located runs --------------------------------------------------------

    def run_mix(self, profiles: List[WorkloadProfile],
                warmup_s: float = 30.0, epoch_s: float = 1.0,
                pinned_churn: bool = True) -> "MixRunResult":
        """Run several workloads concurrently on one server.

        Models the paper's consolidated setting: every profile's footprint
        coexists in the same physical memory, their bandwidths add, and the
        daemon serves the union of their dynamics.  Per-profile overhead is
        estimated from the shared event rate weighted by each workload's
        memory sensitivity (they all suffer the same lock/TLB interference).
        """
        source = MixSource(self, profiles)
        duration = source.duration_s
        run = self.kernel.run(source, epoch_s=epoch_s, warmup_s=warmup_s,
                              pinned_churn=pinned_churn)

        policy = self.system.policy
        stats = policy.stats
        policy_overhead = policy.runtime_overhead_fraction()
        overheads = {}
        for profile in profiles:
            overhead = self.perf.greendimm_overhead_fraction(
                profile, stats.offline_events, stats.online_events, duration)
            overhead += run.swap_stall_s / duration
            if policy_overhead:
                overhead += policy_overhead
            overheads[profile.name] = overhead
        # Same energy convention as run_workload: runtime dilation from
        # GreenDIMM interference scales consumed energy.  A co-located run
        # is elongated by its slowest tenant, so the worst overhead applies.
        worst = max(overheads.values(), default=0.0)
        return MixRunResult(
            profile_names=[p.name for p in profiles],
            elapsed_s=duration,
            samples=run.samples,
            offline_events=stats.offline_events,
            online_events=stats.online_events,
            dram_energy_j=run.dram_energy_j * (1.0 + worst),
            baseline_dram_energy_j=(run.baseline_dram_energy_j
                                    * (1.0 + worst)),
            overhead_by_profile=overheads,
            swap_stall_s=run.swap_stall_s,
            residency=run.residency)
