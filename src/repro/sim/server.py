"""Epoch-granularity server simulation.

Drives a :class:`repro.core.GreenDIMMSystem` with either a single
workload profile (SPEC / data-center runs) or an Azure-like VM trace,
advancing the OS, KSM, and GreenDIMM daemon once per epoch and
integrating DRAM/system energy as it goes.

Quiescent spans — no trace event, footprint change, daemon threshold
crossing, or fault window in sight — are fast-forwarded through
:mod:`repro.sim.fastforward`: the run loop synthesizes the identical
per-epoch samples from one template instead of re-executing the whole
stack, bit-for-bit equal to per-epoch stepping (pass
``fast_forward=False`` to force the reference path).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, NamedTuple, Optional

from repro import perfcounters
from repro.core.system import GreenDIMMSystem
from repro.errors import AllocationError, ConfigurationError
from repro.os.hotplug import HotplugStats
from repro.os.page import OwnerKind
from repro.os.swap import SwapSpace
from repro.power.idd import DPD_RESIDUAL_FRACTION, SPARE_ROW_FRACTION
from repro.power.system import SystemPowerModel
from repro.sim.fastforward import FastForwardStats, SimClock, quiescent_horizon
from repro.sim.perfmodel import PerformanceModel
from repro.units import PAGE_SIZE, PEAK_DRAM_BANDWIDTH_BYTES_PER_S
from repro.workloads.azure import AzureTrace
from repro.workloads.profiles import WorkloadProfile
from repro.ksm.content import RegionContent


class EpochSample(NamedTuple):
    """One epoch's observables.

    A ``NamedTuple`` rather than a frozen dataclass: the run loops build
    one per simulated epoch (hundreds of thousands per trace replay), and
    tuple construction is several times cheaper than a dataclass
    ``__init__`` while keeping the same field access and equality.
    """

    time_s: float
    used_pages: int
    free_pages: int
    offline_blocks: int
    dpd_fraction: float
    dram_power_w: float


@dataclass
class WorkloadRunResult:
    """Outcome of one profile run under GreenDIMM."""

    profile_name: str
    elapsed_s: float
    samples: List[EpochSample]
    offline_events: int
    online_events: int
    ebusy_failures: int
    eagain_failures: int
    offlined_bytes_total: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    overhead_fraction: float
    swap_shortfall_pages: int

    @property
    def runtime_s(self) -> float:
        """Wall time including GreenDIMM's interference."""
        return self.elapsed_s * (1.0 + self.overhead_fraction)

    @property
    def mean_offline_blocks(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.offline_blocks for s in self.samples) / len(self.samples)

    def mean_offlined_bytes(self, block_bytes: int) -> float:
        """Mean off-lined capacity over the run (Figure 6's metric)."""
        return self.mean_offline_blocks * block_bytes

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j


@dataclass
class VMTraceRunResult:
    """Outcome of an Azure-trace replay (Figures 1, 12, 13)."""

    samples: List[EpochSample]
    total_blocks: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    ksm_saved_pages_final: int
    emergency_onlines: int

    @property
    def mean_offline_blocks(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.offline_blocks for s in self.samples) / len(self.samples)

    @property
    def max_offline_blocks(self) -> int:
        return max((s.offline_blocks for s in self.samples), default=0)

    @property
    def min_offline_blocks(self) -> int:
        return min((s.offline_blocks for s in self.samples), default=0)

    @property
    def mean_dpd_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.dpd_fraction for s in self.samples) / len(self.samples)

    @property
    def background_power_reduction(self) -> float:
        """Mean background-power reduction vs an ungated baseline.

        Gated capacity sheds its background power except the power-gate
        leakage residual and the never-gated spare rows; both factors
        come from the calibrated power model so a recalibration there
        cannot silently diverge from this summary statistic.
        """
        return (self.mean_dpd_fraction
                * (1.0 - DPD_RESIDUAL_FRACTION)
                * (1.0 - SPARE_ROW_FRACTION))

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j


@dataclass
class MixRunResult:
    """Outcome of a co-located multi-workload run."""

    profile_names: List[str]
    elapsed_s: float
    samples: List[EpochSample]
    offline_events: int
    online_events: int
    dram_energy_j: float
    baseline_dram_energy_j: float
    overhead_by_profile: "dict[str, float]"
    swap_stall_s: float

    @property
    def dram_energy_saving(self) -> float:
        if self.baseline_dram_energy_j <= 0:
            return 0.0
        return 1.0 - self.dram_energy_j / self.baseline_dram_energy_j

    @property
    def worst_overhead(self) -> float:
        return max(self.overhead_by_profile.values(), default=0.0)


@dataclass
class _PinnedExtent:
    owner_seq: int
    expires_s: float


class ServerSimulator:
    """Runs workloads/traces against one GreenDIMM-managed server."""

    def __init__(self, system: GreenDIMMSystem,
                 perf: Optional[PerformanceModel] = None,
                 system_power: Optional[SystemPowerModel] = None,
                 swap: Optional[SwapSpace] = None,
                 pinned_churn_rate_per_s: float = 0.3,
                 pinned_lifetime_s: float = 45.0,
                 seed: int = 5,
                 fast_forward: bool = True):
        self.system = system
        self.perf = perf or PerformanceModel()
        self.system_power = system_power or SystemPowerModel()
        self.swap = swap or SwapSpace()
        self.pinned_churn_rate_per_s = pinned_churn_rate_per_s
        self.pinned_lifetime_s = pinned_lifetime_s
        self.rng = random.Random(seed)
        self._pinned: List[_PinnedExtent] = []
        self._pin_seq = 0
        #: Skip quiescent epochs analytically (results are bit-for-bit
        #: identical either way; ``False`` forces per-epoch stepping).
        self.fast_forward = fast_forward
        #: Fast-forward accounting of the most recent ``run_*`` call.
        self.ff_stats = FastForwardStats()

    # --- shared plumbing ------------------------------------------------------

    def _resize_owner(self, owner: str, target_pages: int, now_s: float,
                      mergeable: bool = False, emergency: bool = False) -> int:
        """Grow/shrink *owner* to *target_pages* resident pages.

        Growth beyond what the free reserve can absorb spills to swap —
        the kernel cannot wait for GreenDIMM's next monitoring pass, which
        is exactly why reserves below ~10% thrash (Section 4.2).  With
        *emergency* set (hypervisor-coordinated VM placement) the daemon
        is asked to on-line blocks synchronously instead.  Shrinking
        drops swap slots first (those pages are dead copies) and frees
        resident memory for the rest.  Returns pages pushed to swap.
        """
        mm = self.system.mm
        total = mm.owner_pages(owner) + self.swap.held_for(owner)
        if target_pages > total:
            # The footprint is resident + swapped; only the delta beyond
            # both is new memory.  Swapped pages fault back in when room
            # exists.
            self._try_swap_in(owner)
            need = target_pages - total
            attempts = 2 if emergency else 1
            for _attempt in range(attempts):
                try:
                    mm.allocate(owner, need, mergeable=mergeable)
                    return 0
                except AllocationError:
                    if not emergency:
                        break
                    if not self.system.daemon.emergency_online(need, now_s):
                        break
            available = max(0, mm.free_pages - 16)
            if available > 0:
                take = min(need, available)
                try:
                    mm.allocate(owner, take, mergeable=mergeable)
                    need -= take
                except AllocationError:
                    # A second failure (e.g. an injected pressure spike
                    # right after the first) leaves the whole remainder
                    # for swap rather than killing the run.
                    pass
            if need > 0:
                self.swap.swap_out(owner, need)
            return need
        if target_pages < total:
            surplus = total - target_pages
            dropped = self.swap.drop(owner, surplus)
            remaining = surplus - dropped
            if remaining > 0:
                mm.free_pages_of(owner, remaining)
        else:
            self._try_swap_in(owner)
        return 0

    def resize_owner(self, owner: str, target_pages: int, now_s: float,
                     mergeable: bool = False, emergency: bool = False) -> int:
        """Public entry for external drivers (e.g. the fault-storm
        experiment): grow/shrink *owner* through the same spill/emergency
        machinery the built-in runs use.  Returns pages pushed to swap.
        """
        self.system.advance_time(now_s)
        return self._resize_owner(owner, target_pages, now_s,
                                  mergeable=mergeable, emergency=emergency)

    def _try_swap_in(self, owner: str) -> None:
        """Fault this owner's swapped pages back in while room exists.

        Recovery is bounded by free memory: the daemon's monitor, not
        this fault path, is what brings off-lined blocks back.
        """
        held = self.swap.held_for(owner)
        if not held:
            return
        mm = self.system.mm
        take = min(held, max(0, mm.free_pages - 2048))
        if take <= 0:
            return
        try:
            mm.allocate(owner, take)
        except AllocationError:
            return
        self.swap.swap_in(owner, take)

    def _pinned_churn(self, now_s: float, dt_s: float) -> None:
        """Short-lived pinned allocations that leak unmovable pages into
        movable blocks — the EBUSY source of Section 5.2."""
        for pin in list(self._pinned):
            if pin.expires_s <= now_s:
                self.system.mm.free_all(f"pin{pin.owner_seq}")
                self._pinned.remove(pin)
        expected = self.pinned_churn_rate_per_s * dt_s
        count = int(expected)
        if self.rng.random() < expected - count:
            count += 1
        for _ in range(count):
            self._pin_seq += 1
            pages = self.rng.choice((4, 8, 16, 32))
            # Most transient kernel allocations stay in ZONE_NORMAL; a
            # minority are user pages pinned in place, which is the leak
            # that contaminates movable blocks (Section 5.2).
            kind = (OwnerKind.PINNED if self.rng.random() < 0.25
                    else OwnerKind.KERNEL)
            try:
                self.system.mm.allocate(
                    f"pin{self._pin_seq}", pages, kind=kind)
            except AllocationError:
                continue
            self._pinned.append(_PinnedExtent(
                owner_seq=self._pin_seq,
                expires_s=now_s + self.rng.expovariate(1.0 / self.pinned_lifetime_s)))

    def _sample(self, now_s: float, bandwidth: float,
                row_miss_rate: float) -> EpochSample:
        info = self.system.mm.meminfo()
        power = self.system.dram_power(
            bandwidth_bytes_per_s=bandwidth,
            active_residency=min(1.0, bandwidth
                                 / PEAK_DRAM_BANDWIDTH_BYTES_PER_S),
            row_miss_rate=row_miss_rate)
        return EpochSample(time_s=now_s,
                           used_pages=info.used_pages,
                           free_pages=info.free_pages,
                           offline_blocks=self.system.daemon.offline_block_count,
                           dpd_fraction=self.system.daemon.dpd_fraction(),
                           dram_power_w=power.total_w)

    def _baseline_power_w(self, bandwidth: float, row_miss_rate: float) -> float:
        """Ungated-baseline power at the epoch's operating point."""
        return self.system.baseline_dram_power(
            bandwidth_bytes_per_s=bandwidth,
            active_residency=min(1.0, bandwidth
                                 / PEAK_DRAM_BANDWIDTH_BYTES_PER_S),
            row_miss_rate=row_miss_rate).total_w

    def _reset_stats(self) -> None:
        from repro.core.daemon import DaemonStats

        self.system.daemon.stats = DaemonStats()
        self.system.hotplug.stats = HotplugStats()
        self.ff_stats = FastForwardStats()

    def _publish_ff_stats(self) -> None:
        """Mirror the finished run's counters into the process totals."""
        counters = perfcounters.GLOBAL
        counters.epochs_stepped += self.ff_stats.epochs_stepped
        counters.epochs_fast_forwarded += self.ff_stats.epochs_fast_forwarded
        counters.fast_forward_windows += self.ff_stats.windows

    # --- quiescence fast-forward ----------------------------------------------

    def _fast_forward_usable(self, churn: bool, epoch_s: float) -> bool:
        """Can this run profit from the fast path at all?

        With pinned churn expecting >= 1 arrival every epoch (``int`` part
        of rate x epoch), every epoch perturbs memory, so no window could
        span more than one epoch — skip the detection overhead entirely.
        """
        if not self.fast_forward:
            return False
        if churn and self.pinned_churn_rate_per_s * epoch_s >= 1.0:
            return False
        return True

    def _fast_forward_window(self, clock: SimClock, end_s: float,
                             bandwidth: float, row_miss_rate: float,
                             churn: bool, samples: List[EpochSample],
                             dram_energy: float, baseline_energy: float,
                             ) -> "tuple[float, float]":
        """Advance epochs in [clock.now_s, end_s) without stepping the stack.

        The caller guarantees nothing can happen before *end_s*: owner
        footprints are flat and already resident, the daemon's monitor
        would no-op, KSM is idle, and no fault rule is live.  Each
        skipped epoch appends a clone of one template sample and
        accumulates energy with the same per-epoch float ops as the slow
        path.  Pinned churn (the one remaining source of activity) still
        runs for real each epoch, preserving the RNG stream; the moment
        it perturbs memory the epoch is completed through the normal
        machinery and the window closes.

        Returns the updated ``(dram_energy, baseline_energy)``.
        """
        system = self.system
        mm = system.mm
        daemon = system.daemon
        epoch_s = clock.epoch_s
        stats = self.ff_stats
        stats.windows += 1
        baseline_w = self._baseline_power_w(bandwidth, row_miss_rate)
        if not churn:
            # No per-epoch side effects at all: replay the remaining float
            # arithmetic (monitor timer, clock, energy sums) as straight
            # local-variable ops — the op sequence is identical, only the
            # interpreter overhead of going through the objects is gone.
            system.advance_time(clock.now_s)
            template = self._sample(clock.now_s, bandwidth, row_miss_rate)
            used = template.used_pages
            free = template.free_pages
            offline = template.offline_blocks
            dpd = template.dpd_fraction
            power_w = template.dram_power_w
            append = samples.append
            now = clock.now_s
            since = daemon._since_monitor_s
            period = daemon.config.monitor_period_s
            skipped = 0
            while now < end_s:
                since += epoch_s
                if since >= period:
                    since = 0.0
                append(EpochSample(time_s=now, used_pages=used,
                                   free_pages=free, offline_blocks=offline,
                                   dpd_fraction=dpd, dram_power_w=power_w))
                dram_energy += power_w * epoch_s
                baseline_energy += baseline_w * epoch_s
                skipped += 1
                now += epoch_s
            daemon._since_monitor_s = since
            clock.now_s = now
            stats.epochs_fast_forwarded += skipped
            return dram_energy, baseline_energy
        template = None
        while clock.now_s < end_s:
            t = clock.now_s
            system.advance_time(t)
            if churn:
                free_before = mm.free_pages
                self._pinned_churn(t, epoch_s)
                if mm.free_pages != free_before:
                    # Churn moved memory: finish this epoch on the slow
                    # path (the pending resize is still a guaranteed
                    # no-op) and hand control back to the outer loop.
                    system.step(t, epoch_s)
                    sample = self._sample(t, bandwidth, row_miss_rate)
                    samples.append(sample)
                    dram_energy += sample.dram_power_w * epoch_s
                    baseline_energy += baseline_w * epoch_s
                    stats.epochs_stepped += 1
                    clock.tick()
                    break
            if template is None:
                template = self._sample(t, bandwidth, row_miss_rate)
            daemon.tick_quiescent(epoch_s)
            samples.append(template._replace(time_s=t))
            dram_energy += template.dram_power_w * epoch_s
            baseline_energy += baseline_w * epoch_s
            stats.epochs_fast_forwarded += 1
            clock.tick()
        return dram_energy, baseline_energy

    def _owner_steady(self, owner: str, target_pages: int) -> bool:
        """Would resizing *owner* to *target_pages* be a strict no-op?"""
        return (self.swap.held_for(owner) == 0
                and target_pages == self.system.mm.owner_pages(owner))

    def _workload_horizon(self, t: float, owner: str,
                          profile: WorkloadProfile, n_copies: int) -> float:
        """Fast-forward horizon for a single-profile run (or *t*: none)."""
        target = profile.footprint.at(t) * n_copies // PAGE_SIZE
        if not self._owner_steady(owner, target):
            return t
        flat_until = profile.footprint.constant_until(t)
        if flat_until <= t:
            return t
        return min(flat_until, quiescent_horizon(self.system, t))

    def _mix_horizon(self, t: float, owners: "dict[str, WorkloadProfile]",
                     ) -> float:
        """Fast-forward horizon for a co-located run (or *t*: none)."""
        horizon = quiescent_horizon(self.system, t)
        if horizon <= t:
            return t
        for owner, profile in owners.items():
            target = profile.footprint.at(min(t, profile.duration_s))
            if not self._owner_steady(owner, target // PAGE_SIZE):
                return t
            if t >= profile.duration_s:
                continue  # clamped at its final footprint forever
            flat_until = profile.footprint.constant_until(t)
            if flat_until <= t:
                return t
            if flat_until < profile.duration_s:
                horizon = min(horizon, flat_until)
            # A flat run reaching duration_s keeps the clamped value
            # constant beyond it, so it does not bound the horizon.
        return horizon

    # --- single-profile runs (SPEC / data-center) -----------------------------

    def run_workload(self, profile: WorkloadProfile, n_copies: int = 1,
                     warmup_s: float = 30.0, epoch_s: float = 1.0,
                     pinned_churn: bool = True) -> WorkloadRunResult:
        """Run *n_copies* of *profile* to completion under GreenDIMM."""
        if epoch_s <= 0:
            raise ConfigurationError("epoch must be positive")
        owner = "app"
        bandwidth = profile.bandwidth_demand_bytes_per_s * n_copies
        row_miss = 1.0 - profile.row_hit_rate

        # Warm up: reach the initial footprint and let the daemon settle.
        initial = profile.footprint.at(0.0) * n_copies // PAGE_SIZE
        if initial:
            self._resize_owner(owner, initial, 0.0)
        t = -warmup_s
        while t < 0:
            self.system.step(t, epoch_s)
            t += epoch_s
        self._reset_stats()
        swap_stall_before = self.swap.stats.stall_s

        samples: List[EpochSample] = []
        dram_energy = 0.0
        baseline_energy = 0.0
        shortfall = 0
        use_ff = self._fast_forward_usable(pinned_churn, epoch_s)
        clock = SimClock(epoch_s)
        while clock.now_s < profile.duration_s:
            t = clock.now_s
            if use_ff:
                horizon = self._workload_horizon(t, owner, profile, n_copies)
                if horizon > t + epoch_s:
                    end = min(horizon, profile.duration_s)
                    dram_energy, baseline_energy = self._fast_forward_window(
                        clock, end, bandwidth, row_miss, pinned_churn,
                        samples, dram_energy, baseline_energy)
                    continue
            self.system.advance_time(t)
            target = profile.footprint.at(t) * n_copies // PAGE_SIZE
            shortfall += self._resize_owner(owner, target, t)
            if pinned_churn:
                self._pinned_churn(t, epoch_s)
            self.system.step(t, epoch_s)
            sample = self._sample(t, bandwidth, row_miss)
            samples.append(sample)
            dram_energy += sample.dram_power_w * epoch_s
            baseline_energy += self._baseline_power_w(bandwidth,
                                                      row_miss) * epoch_s
            self.ff_stats.epochs_stepped += 1
            clock.tick()
        self._publish_ff_stats()

        stats = self.system.daemon.stats
        overhead = self.perf.greendimm_overhead_fraction(
            profile, stats.offline_events, stats.online_events,
            profile.duration_s)
        swap_stall = self.swap.stats.stall_s - swap_stall_before
        overhead += swap_stall / profile.duration_s
        return WorkloadRunResult(
            profile_name=profile.name,
            elapsed_s=profile.duration_s,
            samples=samples,
            offline_events=stats.offline_events,
            online_events=stats.online_events,
            ebusy_failures=stats.ebusy_failures,
            eagain_failures=stats.eagain_failures,
            offlined_bytes_total=stats.offlined_bytes_total,
            dram_energy_j=dram_energy * (1.0 + overhead),
            baseline_dram_energy_j=baseline_energy * (1.0 + overhead),
            overhead_fraction=overhead,
            swap_shortfall_pages=shortfall)

    # --- VM-trace runs (Figures 1, 12, 13) --------------------------------------

    def run_vm_trace(self, trace: AzureTrace, epoch_s: float = 5.0,
                     mean_vm_bandwidth_bytes_per_s: float = 0.4e9,
                     pinned_churn: bool = True) -> VMTraceRunResult:
        """Replay an Azure-like trace against the system."""
        if epoch_s <= 0:
            raise ConfigurationError("epoch must be positive")
        events = sorted(trace.events, key=lambda e: e.time_s)
        cursor = 0
        running = 0
        samples: List[EpochSample] = []
        dram_energy = 0.0
        baseline_energy = 0.0
        duration = max((e.time_s for e in events), default=0.0) + 300.0
        ksm = self.system.ksm
        use_ff = self._fast_forward_usable(pinned_churn, epoch_s)
        self.ff_stats = FastForwardStats()
        clock = SimClock(epoch_s)
        while clock.now_s < duration:
            t = clock.now_s
            if use_ff and not (cursor < len(events)
                               and events[cursor].time_s <= t):
                # VMs only move at trace events, so the workload-side
                # horizon is simply the next event's timestamp.
                horizon = quiescent_horizon(self.system, t)
                if cursor < len(events):
                    horizon = min(horizon, events[cursor].time_s)
                if horizon > t + epoch_s:
                    end = min(horizon, duration)
                    bandwidth = running * mean_vm_bandwidth_bytes_per_s
                    dram_energy, baseline_energy = self._fast_forward_window(
                        clock, end, bandwidth, 0.5, pinned_churn,
                        samples, dram_energy, baseline_energy)
                    continue
            self.system.advance_time(t)
            while cursor < len(events) and events[cursor].time_s <= t:
                event = events[cursor]
                cursor += 1
                vm = event.instance
                if event.kind == "arrive":
                    pages = vm.vm_type.memory_bytes // PAGE_SIZE
                    self._resize_owner(vm.owner_id, pages, t, mergeable=True,
                                       emergency=True)
                    running += 1
                    if ksm is not None:
                        ksm.register(RegionContent(
                            owner_id=vm.owner_id, total_pages=pages,
                            image_id=vm.vm_type.image_id))
                else:
                    if ksm is not None:
                        ksm.unregister(vm.owner_id)
                    self.system.mm.free_all(vm.owner_id)
                    self.swap.release(vm.owner_id)
                    running = max(0, running - 1)
            if pinned_churn:
                self._pinned_churn(t, epoch_s)
            self.system.step(t, epoch_s)
            bandwidth = running * mean_vm_bandwidth_bytes_per_s
            sample = self._sample(t, bandwidth, row_miss_rate=0.5)
            samples.append(sample)
            dram_energy += sample.dram_power_w * epoch_s
            baseline_energy += self._baseline_power_w(bandwidth, 0.5) * epoch_s
            self.ff_stats.epochs_stepped += 1
            clock.tick()
        self._publish_ff_stats()

        return VMTraceRunResult(
            samples=samples,
            total_blocks=self.system.mm.num_blocks,
            dram_energy_j=dram_energy,
            baseline_dram_energy_j=baseline_energy,
            ksm_saved_pages_final=(ksm.total_saved_pages if ksm else 0),
            emergency_onlines=self.system.daemon.stats.emergency_onlines)

    def run_mix(self, profiles: List[WorkloadProfile],
                warmup_s: float = 30.0, epoch_s: float = 1.0,
                pinned_churn: bool = True) -> "MixRunResult":
        """Run several workloads concurrently on one server.

        Models the paper's consolidated setting: every profile's footprint
        coexists in the same physical memory, their bandwidths add, and the
        daemon serves the union of their dynamics.  Per-profile overhead is
        estimated from the shared event rate weighted by each workload's
        memory sensitivity (they all suffer the same lock/TLB interference).
        """
        if not profiles:
            raise ConfigurationError("need at least one profile")
        duration = max(p.duration_s for p in profiles)
        owners = {f"mix{i}-{p.name}": p for i, p in enumerate(profiles)}
        bandwidth = sum(p.bandwidth_demand_bytes_per_s for p in profiles)
        row_miss = (sum((1.0 - p.row_hit_rate)
                        * p.bandwidth_demand_bytes_per_s for p in profiles)
                    / max(bandwidth, 1.0))

        for owner, profile in owners.items():
            initial = profile.footprint.at(0.0) // PAGE_SIZE
            if initial:
                self._resize_owner(owner, initial, 0.0)
        t = -warmup_s
        while t < 0:
            self.system.step(t, epoch_s)
            t += epoch_s
        self._reset_stats()
        swap_stall_before = self.swap.stats.stall_s

        samples: List[EpochSample] = []
        dram_energy = 0.0
        baseline_energy = 0.0
        use_ff = self._fast_forward_usable(pinned_churn, epoch_s)
        clock = SimClock(epoch_s)
        while clock.now_s < duration:
            t = clock.now_s
            if use_ff:
                horizon = self._mix_horizon(t, owners)
                if horizon > t + epoch_s:
                    end = min(horizon, duration)
                    dram_energy, baseline_energy = self._fast_forward_window(
                        clock, end, bandwidth, row_miss, pinned_churn,
                        samples, dram_energy, baseline_energy)
                    continue
            self.system.advance_time(t)
            for owner, profile in owners.items():
                target = profile.footprint.at(min(t, profile.duration_s))
                self._resize_owner(owner, target // PAGE_SIZE, t)
            if pinned_churn:
                self._pinned_churn(t, epoch_s)
            self.system.step(t, epoch_s)
            sample = self._sample(t, bandwidth, row_miss)
            samples.append(sample)
            dram_energy += sample.dram_power_w * epoch_s
            baseline_energy += self._baseline_power_w(bandwidth,
                                                      row_miss) * epoch_s
            self.ff_stats.epochs_stepped += 1
            clock.tick()
        self._publish_ff_stats()

        stats = self.system.daemon.stats
        swap_stall = self.swap.stats.stall_s - swap_stall_before
        overheads = {}
        for profile in profiles:
            overhead = self.perf.greendimm_overhead_fraction(
                profile, stats.offline_events, stats.online_events, duration)
            overheads[profile.name] = overhead + swap_stall / duration
        # Same energy convention as run_workload: runtime dilation from
        # GreenDIMM interference scales consumed energy.  A co-located run
        # is elongated by its slowest tenant, so the worst overhead applies.
        worst = max(overheads.values(), default=0.0)
        return MixRunResult(
            profile_names=[p.name for p in profiles],
            elapsed_s=duration,
            samples=samples,
            offline_events=stats.offline_events,
            online_events=stats.online_events,
            dram_energy_j=dram_energy * (1.0 + worst),
            baseline_dram_energy_j=baseline_energy * (1.0 + worst),
            overhead_by_profile=overheads,
            swap_stall_s=swap_stall)
