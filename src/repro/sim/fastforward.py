"""Quiescence fast-forward support for the epoch-stepped simulator.

The :class:`~repro.sim.server.ServerSimulator` steps the whole
OS/KSM/daemon/power stack once per epoch even when nothing can happen.
This module supplies the pieces that let it recognize such *quiescent
windows* — spans of epochs in which no trace event, footprint change,
daemon threshold crossing, or fault-plan window boundary can occur — and
advance through them in a tight loop that synthesizes the identical
:class:`~repro.sim.server.EpochSample` stream.

Bit-for-bit equivalence is the contract, which shapes the design:

* energy is still accumulated one ``+= power * epoch_s`` per epoch (a
  closed-form ``power * epoch_s * n`` would re-associate the float sum);
* the simulated clock advances through :class:`SimClock` with the same
  ``now_s += epoch_s`` op sequence in both paths;
* the daemon's monitor timer ticks via
  :meth:`~repro.core.daemon.GreenDIMMDaemon.tick_quiescent`, a bit-exact
  mirror of its ``step`` arithmetic;
* pinned-churn epochs still call the real churn routine (preserving the
  RNG stream); the window closes the moment churn perturbs memory;
* the fast path never opens a window while a fault-plan rule is live
  (:meth:`~repro.faults.injector.FaultInjector.quiescent_until`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:
    from repro.core.system import GreenDIMMSystem


@dataclass
class SimClock:
    """The run loop's epoch clock.

    Fast and slow paths share one instance, so the accumulated ``now_s``
    goes through the identical sequence of float additions regardless of
    which path executed each epoch.
    """

    epoch_s: float
    now_s: float = 0.0

    def tick(self) -> None:
        """Advance by one epoch (the only way time moves in a run)."""
        self.now_s += self.epoch_s


@dataclass
class FastForwardStats:
    """Per-run accounting of the fast-forward and span-planner layers."""

    windows: int = 0
    epochs_fast_forwarded: int = 0
    epochs_stepped: int = 0
    #: Stable stepped spans the span planner executed as one batch.
    spans_stable: int = 0
    #: Epochs executed inside stable spans.  These are *also* counted in
    #: ``epochs_stepped`` — a batched epoch is a stepped epoch that was
    #: evaluated in bulk, not a skipped one — which keeps ``as_dict()``
    #: (pinned by the golden kernel recordings) unchanged by batching.
    epochs_batched: int = 0

    @property
    def epochs_total(self) -> int:
        return self.epochs_fast_forwarded + self.epochs_stepped

    @property
    def fast_forward_fraction(self) -> float:
        total = self.epochs_total
        return self.epochs_fast_forwarded / total if total else 0.0

    @property
    def epochs_dynamic(self) -> int:
        """Epochs that truly stepped the full stack one at a time."""
        return self.epochs_stepped - self.epochs_batched

    def as_dict(self) -> Dict[str, int]:
        return {"windows": self.windows,
                "epochs_fast_forwarded": self.epochs_fast_forwarded,
                "epochs_stepped": self.epochs_stepped}

    def span_counters(self) -> Dict[str, int]:
        """The span-planner view: quiescent / batched / dynamic epochs.

        Kept out of :meth:`as_dict` deliberately — that dict's keys and
        values are pinned bit-for-bit by the golden kernel recordings.
        """
        return {"spans_quiescent": self.windows,
                "spans_stable": self.spans_stable,
                "epochs_batched": self.epochs_batched,
                "epochs_dynamic": self.epochs_dynamic}


def quiescent_horizon(system: "GreenDIMMSystem", now_s: float) -> float:
    """How far the *system side* of the simulation is steady, from *now_s*.

    Returns *now_s* itself when the system is not quiescent right now:
    the active policy's monitor would act (for the daemon: free memory
    outside the hysteresis band), KSM has registered regions to scan (or
    a just-completed pass that would kick the monitor), or a fault rule
    is live.  Otherwise returns the earliest future time system activity
    could resume — the next fault-rule start, or ``inf``.

    Callers intersect this with their own workload-side horizon (next
    trace event, end of the footprint's flat run).
    """
    if not system.policy.monitor_is_noop():
        return now_s
    ksm = system.ksm
    if ksm is not None and (ksm.pass_just_completed or ksm.registry.regions()):
        return now_s
    injector = system.fault_injector
    if injector is None:
        return math.inf
    return injector.quiescent_until(now_s)
