"""Command-line interface: ``python -m repro <command>``.

Commands
--------
list-workloads          the synthetic workload catalog
list-experiments        every reproducible table/figure
run EXPERIMENT... [--fast] [--parallel N] [--cache-dir DIR]
                 [--fault-plan FILE] [--no-fast-forward] [--trace FILE]
                 [--policy NAME]
                        regenerate tables/figures (``all`` = whole suite)
tournament [--fast] [--policies NAME ...] [--scenarios NAME ...]
           [--workers N] [--metrics FILE] [--report FILE]
                        run every power policy across the scenario matrix
simulate WORKLOAD [--trace FILE]
                        run a workload under the GreenDIMM daemon
fleet [--servers N] [--hours H] [--workers N] [--report FILE]
                        replay a sharded datacenter trace across servers
report METRICS [--trace FILE] [--out FILE] [--html]
                        render a metrics JSONL into a run report
bench [--full] [--out FILE] [--compare [--baseline FILE] [--threshold T]]
                        time the simulation core fast vs per-epoch path
                        (and optionally gate against the committed numbers)
figures run|check|bless [--fast] [--only ID] [--expected-dir DIR]
                        [--report-dir DIR]
                        regenerate every figure/table, write per-figure
                        REPORT.md files, and diff the numbers against the
                        committed expectations (check exits non-zero on
                        drift; bless re-pins after an intentional change)
faults storm|show       generate or inspect deterministic fault plans
serve [--servers N] [--workers N] [--port P] [--policy NAME] [--ksm]
                        keep a resident simulator fleet warm behind a
                        REST/JSON control plane
ctl <action> [...]      drive a running service: status, servers,
                        ingest, advance, snapshot/restore, migrate,
                        fault, retune, reshard, shutdown
topology [--capacity]   show a platform's geometry and power envelope
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Callable, Dict, List, Optional

from repro import __version__
from repro.analysis.report import Table
from repro.core.config import GreenDIMMConfig
from repro.core.system import GreenDIMMSystem
from repro.dram.address import AddressMapping
from repro.dram.organization import scaled_server_memory, spec_server_memory
from repro.errors import ReproError
from repro.power.model import DRAMPowerModel
from repro.sim.server import ServerSimulator
from repro.units import GIB, MIB
from repro.workloads.registry import all_profiles, profile_by_name


def _experiment_runners() -> Dict[str, Callable]:
    """Name -> run callable for every experiment module."""
    from repro.experiments.registry import runners

    return runners()


def cmd_list_workloads(_args: argparse.Namespace) -> int:
    table = Table("Workload catalog",
                  ["name", "suite", "peak footprint", "MPKI", "notes"])
    for name, profile in sorted(all_profiles().items()):
        notes = "latency-critical" if profile.latency_critical else (
            "memory-intensive" if profile.memory_intensive else "cpu-bound")
        table.add_row(name, profile.suite.value,
                      f"{profile.peak_footprint_bytes / GIB:.2f} GiB",
                      f"{profile.mpki:g}", notes)
    print(table.render())
    return 0


def cmd_list_experiments(_args: argparse.Namespace) -> int:
    from repro.analysis.paper import PAPER

    table = Table("Reproducible tables and figures", ["id", "description"])
    for name in _experiment_runners():
        key = name.replace("-", "_")
        description = PAPER.get(name, PAPER.get(key, {})).get(
            "description", "(extension beyond the paper)")
        table.add_row(name, description)
    print(table.render())
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    from repro.analysis.aggregate import SuiteAggregator
    from repro.runner import (
        MetricsBus,
        ParallelRunner,
        ResultCache,
        suite_jobs,
    )

    runners = _experiment_runners()
    requested = args.experiments
    unknown = [n for n in requested if n != "all" and n not in runners]
    if unknown:
        print(f"unknown experiment {unknown[0]!r}; "
              f"try: {', '.join(runners)}", file=sys.stderr)
        return 2

    plan_json = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        plan_json = FaultPlan.from_file(args.fault_plan).canonical()
    if args.policy:
        from repro.policies import policy_names

        if args.policy not in policy_names():
            print(f"unknown policy {args.policy!r}; "
                  f"try: {', '.join(policy_names())}", file=sys.stderr)
            return 2
    jobs = suite_jobs(requested, fast=args.fast, fault_plan=plan_json,
                      fast_forward=not args.no_fast_forward,
                      policy=args.policy)
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    metrics = MetricsBus(path=args.metrics)
    engine = ParallelRunner(workers=args.parallel, cache=cache,
                            metrics=metrics)
    aggregator = SuiteAggregator(canonical_order=list(runners))
    if args.trace:
        from repro.obs.tracer import trace_scope

        with trace_scope(True):
            outcomes = engine.run(jobs)
        _append_trace_events((o.trace for o in outcomes), args.trace)
    else:
        outcomes = engine.run(jobs)
    aggregator.extend(outcomes)

    for result in aggregator.results().values():
        print(result.render())
        print()
    if len(jobs) > 1 or aggregator.failures():
        print(aggregator.render())
    return 0 if not aggregator.failures() else 1


def _append_trace_events(snapshots, path: str) -> None:
    """Append the events of drained tracer *snapshots* to *path* as JSONL."""
    import json as _json
    import pathlib as _pathlib

    target = _pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("a") as handle:
        for snapshot in snapshots:
            for event in (snapshot or {}).get("events", []):
                handle.write(_json.dumps(event, sort_keys=True) + "\n")
                count += 1
    print(f"wrote {count} trace events to {path}")


def cmd_simulate(args: argparse.Namespace) -> int:
    profile = profile_by_name(args.workload)
    organization = (scaled_server_memory(args.capacity)
                    if args.capacity else spec_server_memory())
    config = GreenDIMMConfig(block_bytes=args.block_mb * MIB)
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.from_file(args.fault_plan)
    system = GreenDIMMSystem(organization=organization, config=config,
                             fault_plan=fault_plan, seed=args.seed)
    simulator = ServerSimulator(system, seed=args.seed,
                                fast_forward=not args.no_fast_forward)
    if args.trace:
        from repro.obs.tracer import GLOBAL_TRACER, trace_scope

        with trace_scope(True):
            result = simulator.run_workload(profile, n_copies=args.copies)
        dumped = GLOBAL_TRACER.dump(args.trace)
        GLOBAL_TRACER.drain()
        print(f"wrote {dumped} trace events to {args.trace}")
    else:
        result = simulator.run_workload(profile, n_copies=args.copies)
    table = Table(f"{profile.name} on {organization.describe()}",
                  ["metric", "value"])
    table.add_row("off-lining events", result.offline_events)
    table.add_row("on-lining events", result.online_events)
    table.add_row("failures (EBUSY/EAGAIN)",
                  f"{result.ebusy_failures}/{result.eagain_failures}")
    table.add_row("mean offline blocks",
                  f"{result.mean_offline_blocks:.1f}/{system.mm.num_blocks}")
    table.add_row("DRAM energy saved", f"{result.dram_energy_saving:.1%}")
    table.add_row("execution-time overhead",
                  f"{result.overhead_fraction:.2%}")
    table.add_row("swap I/O pages", simulator.swap.stats.total_io_pages)
    fractions = result.residency.fractions()
    if fractions:
        table.add_row("state residencies",
                      ", ".join(f"{state}={share:.0%}"
                                for state, share in fractions.items()
                                if share > 0))
    if system.fault_injector is not None:
        stats = system.fault_injector.stats
        counts = ", ".join(f"{k}={v}" for k, v in
                           sorted(stats.as_dict().items())) or "none"
        table.add_row("injected faults", f"{stats.total} ({counts})")
    print(table.render())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.bench import (
        all_identical,
        compare_perf_core,
        render_compare,
        render_perf_core,
        run_perf_core,
    )

    baseline = None
    if args.compare:
        # Read the baseline before the fresh run lands: with the default
        # paths the run overwrites the very document it is gated against.
        import pathlib

        baseline_path = pathlib.Path(args.baseline)
        if not baseline_path.exists():
            print(f"error: baseline {baseline_path} not found",
                  file=sys.stderr)
            return 2
        baseline = json.loads(baseline_path.read_text())

    document = run_perf_core(full=args.full, out=args.out)
    print(render_perf_core(document))
    if args.out:
        print(f"wrote {args.out}")
    if args.profile:
        from repro.bench import profile_slowest

        profiled, path = profile_slowest(document, args.profile,
                                         full=args.full)
        print(f"profiled {profiled} (slowest scenario) -> {path}")
    if not all_identical(document):
        print("error: fast-forward output diverged from the per-epoch "
              "reference path", file=sys.stderr)
        return 1
    if baseline is not None:
        regressions, rows = compare_perf_core(document, baseline,
                                              threshold=args.threshold)
        print()
        print(render_compare(regressions, rows, threshold=args.threshold))
        if regressions:
            return 1
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.figures import render_suite, run_suite

    runners = _experiment_runners()
    names = list(runners)
    if args.only:
        unknown = [n for n in args.only if n not in runners]
        if unknown:
            print(f"unknown experiment {unknown[0]!r}; "
                  f"try: {', '.join(runners)}", file=sys.stderr)
            return 2
        names = list(args.only)
    workers = args.workers
    if workers is None:
        workers = int(os.environ.get("GREENDIMM_FIGURES_WORKERS") or 1)
    suite = run_suite(names, action=args.action, fast=args.fast,
                      expected_dir=args.expected_dir,
                      report_dir=args.report_dir,
                      all_names=list(runners), workers=workers)
    print(render_suite(suite))
    for outcome in suite.outcomes:
        if outcome.report_path is not None:
            print(f"wrote {outcome.report_path}")
    if args.action == "check":
        return 0 if suite.passed else 1
    return 0 if not any(o.error for o in suite.outcomes) else 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.obs.tracer import GLOBAL_TRACER, trace_scope
    from repro.runner import MetricsBus
    from repro.sim.fleet import FleetSource, run_fleet

    source = FleetSource(num_servers=args.servers,
                         duration_s=args.hours * 3600.0, seed=args.seed)
    metrics = MetricsBus(path=args.metrics)
    trace_enabled = bool(args.trace or args.report)
    with trace_scope(trace_enabled):
        result = run_fleet(source, workers=args.workers, metrics=metrics)
    GLOBAL_TRACER.drain()
    if args.trace:
        # The per-server traces were drained into the job_end events by
        # the fan-out (that is how they survive pool workers); flatten
        # them back out for the standalone trace file.
        _append_trace_events(
            (e.get("trace") for e in metrics.events
             if e.get("event") == "job_end"), args.trace)

    table = Table(f"fleet replay: {args.servers} servers x "
                  f"{args.hours:g} h (seed {args.seed})",
                  ["metric", "value"])
    table.add_row("fleet DRAM energy saving",
                  f"{result.fleet_dram_energy_saving:.1%}")
    table.add_row("best / worst server saving",
                  f"{result.best_server_saving:.1%} / "
                  f"{result.worst_server_saving:.1%}")
    table.add_row("p95 peak offline blocks",
                  f"{result.p95_max_offline_blocks}"
                  f"/{result.total_blocks_per_server}")
    table.add_row("emergency on-linings", result.total_emergency_onlines)
    table.add_row("VM events",
                  sum(s.vm_events for s in result.servers))
    print(table.render())

    if args.report:
        from repro.obs.report import write_report

        target = write_report(
            metrics.events, args.report,
            title=f"GreenDIMM fleet run ({args.servers} servers)")
        print(f"wrote report to {target}")
    return 0


def cmd_tournament(args: argparse.Namespace) -> int:
    from repro.experiments.tournament import run as run_tournament
    from repro.runner import MetricsBus

    metrics = MetricsBus(path=args.metrics)
    result = run_tournament(fast=args.fast, policies=args.policies,
                            scenarios=args.scenarios,
                            workers=args.workers, metrics=metrics)
    print(result.render())
    if args.report:
        from repro.obs.report import write_report

        target = write_report(metrics.events, args.report,
                              title="GreenDIMM policy tournament")
        print(f"wrote report to {target}")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    import pathlib

    from repro.obs.report import build_report, load_jsonl, markdown_to_html

    events = load_jsonl(args.metrics)
    trace_events = load_jsonl(args.trace) if args.trace else None
    title = args.title or "GreenDIMM run report"
    markdown = build_report(events, trace_events=trace_events, title=title)
    if args.out:
        target = pathlib.Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        if args.html or target.suffix.lower() in (".html", ".htm"):
            target.write_text(markdown_to_html(markdown, title=title))
        else:
            target.write_text(markdown)
        print(f"wrote report to {target}")
    elif args.html:
        print(markdown_to_html(markdown, title=title))
    else:
        print(markdown)
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import FaultPlan, storm_plan

    if args.action == "storm":
        plan = storm_plan(args.seed, intensity=args.intensity,
                          duration_s=args.duration, num_blocks=args.blocks,
                          name=args.name)
        if args.out:
            plan.save(args.out)
            print(f"wrote {len(plan.rules)} rules to {args.out} "
                  f"(plan {plan.name!r}, seed {plan.seed})")
        else:
            print(plan.canonical())
        return 0

    # action == "show": validate a plan file and summarize it.
    plan = FaultPlan.from_file(args.plan_file)
    table = Table(f"fault plan {plan.name!r} (seed {plan.seed})",
                  ["property", "value"])
    table.add_row("rules", len(plan.rules))
    by_kind: Dict[str, int] = {}
    sticky = 0
    targeted = 0
    horizon = 0.0
    for rule in plan.rules:
        key = f"{rule.op}:{rule.error}"
        by_kind[key] = by_kind.get(key, 0) + 1
        if rule.count < 0:
            sticky += 1
        if rule.target is not None:
            targeted += 1
        if rule.end_s != float("inf"):
            horizon = max(horizon, rule.end_s)
    for key in sorted(by_kind):
        table.add_row(f"  {key}", by_kind[key])
    table.add_row("targeted rules", targeted)
    table.add_row("sticky rules", sticky)
    table.add_row("horizon", f"{horizon:g} s" if horizon else "unbounded")
    print(table.render())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import FleetService, serve

    service = FleetService(num_servers=args.servers,
                           num_workers=args.workers,
                           policy=args.policy, seed=args.seed,
                           epoch_s=args.epoch, enable_ksm=args.ksm,
                           pinned_churn=args.churn)
    try:
        asyncio.run(serve(service, host=args.host, port=args.port))
    except KeyboardInterrupt:
        print("repro service: interrupted, shutting down", file=sys.stderr)
    return 0


def _parse_overrides(pairs: List[str]) -> Dict[str, object]:
    """``key=value`` pairs -> typed config overrides."""
    overrides: Dict[str, object] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ReproError(f"expected key=value, got {pair!r}")
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        overrides[key] = value
    return overrides


def cmd_ctl(args: argparse.Namespace) -> int:
    import json
    import pathlib

    from repro.service import ControlClient

    client = ControlClient(args.url)
    action = args.action
    if action == "status":
        result = client.status()
    elif action == "servers":
        result = client.servers()
    elif action == "server":
        result = client.server(args.index)
    elif action == "events":
        result = client.events(args.index, limit=args.n)
    elif action == "ingest":
        result = client.ingest(vm_id=args.vm_id,
                               memory_bytes=int(args.memory_gib * GIB),
                               time_s=args.time,
                               lifetime_s=args.lifetime,
                               vcpus=args.vcpus, image_id=args.image)
    elif action == "depart":
        result = client.depart(args.vm_id, time_s=args.time)
    elif action == "advance":
        result = (client.advance(dt_s=args.dt) if args.dt is not None
                  else client.advance(until_s=args.until))
    elif action == "snapshot":
        blob = client.snapshot(args.index)
        pathlib.Path(args.out).write_bytes(blob)
        result = {"server": args.index, "out": args.out,
                  "bytes": len(blob)}
    elif action == "restore":
        blob = pathlib.Path(args.snapshot_file).read_bytes()
        result = client.restore(args.index, blob)
    elif action == "migrate":
        result = client.migrate(args.index, args.worker)
    elif action == "fault":
        plan = json.loads(pathlib.Path(args.plan_file).read_text())
        result = client.inject_fault_plan(args.index, plan)
    elif action == "retune":
        result = client.retune(_parse_overrides(args.overrides),
                               server=args.server)
    elif action == "reshard":
        result = client.reshard(args.workers)
    elif action == "shutdown":
        result = client.shutdown()
    else:  # pragma: no cover - argparse enforces choices
        raise ReproError(f"unknown ctl action {action!r}")
    print(json.dumps(result, indent=2, sort_keys=True))
    return 0


def cmd_validate(_args: argparse.Namespace) -> int:
    from repro.validate import render_validation, run_validation

    results = run_validation()
    print(render_validation(results))
    return 0 if all(r.passed for r in results) else 1


def cmd_topology(args: argparse.Namespace) -> int:
    organization = (scaled_server_memory(args.capacity)
                    if args.capacity else spec_server_memory())
    mapping = AddressMapping(organization)
    model = DRAMPowerModel(organization)
    idle = model.idle_power()
    busy = model.busy_power(14e9, active_residency=0.6)
    table = Table(organization.describe(), ["property", "value"])
    table.add_row("device", organization.device.name)
    table.add_row("ranks / banks", f"{organization.total_ranks} / "
                                   f"{organization.total_banks}")
    table.add_row("sub-array groups",
                  f"{organization.num_subarray_groups} x "
                  f"{organization.min_power_unit_bytes // MIB} MiB")
    table.add_row("groups contiguous", str(mapping.group_is_contiguous()))
    table.add_row("idle power", f"{idle.total_w:.1f} W")
    table.add_row("busy power (16x mcf)", f"{busy.total_w:.1f} W")
    table.add_row("background share (busy)",
                  f"{busy.background_fraction:.0%}")
    print(table.render())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreenDIMM (MICRO 2021) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=f"greendimm-repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-workloads").set_defaults(func=cmd_list_workloads)
    sub.add_parser("list-experiments").set_defaults(func=cmd_list_experiments)

    run_p = sub.add_parser(
        "run", help="regenerate tables/figures ('all' = whole suite)")
    run_p.add_argument("experiments", nargs="+", metavar="experiment")
    run_p.add_argument("--fast", action="store_true",
                       help="shrink trace lengths")
    run_p.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="worker processes (1 = serial reference path)")
    run_p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="memoize results on disk, keyed by "
                            "(experiment, config, code version)")
    run_p.add_argument("--metrics", default=None, metavar="FILE",
                       help="append per-job JSONL metrics to FILE")
    run_p.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="inject the fault plan in FILE into every "
                            "system the experiments build")
    run_p.add_argument("--no-fast-forward", action="store_true",
                       help="force per-epoch stepping through quiescent "
                            "spans in every simulator the experiments "
                            "build (results are identical either way; "
                            "the flag keys the result cache)")
    run_p.add_argument("--trace", default=None, metavar="FILE",
                       help="enable structured run tracing and append the "
                            "collected events to FILE as JSONL")
    run_p.add_argument("--policy", default=None, metavar="NAME",
                       help="select the power policy every system the "
                            "experiments build should run (default: the "
                            "GreenDIMM daemon; see 'repro tournament' "
                            "for the catalog)")
    run_p.set_defaults(func=cmd_run)

    tour_p = sub.add_parser(
        "tournament",
        help="run every power policy across the scenario matrix")
    tour_p.add_argument("--fast", action="store_true",
                        help="shrink scenario durations")
    tour_p.add_argument("--policies", action="append", metavar="NAME",
                        help="restrict to one policy (repeatable; "
                             "default: all registered policies)")
    tour_p.add_argument("--scenarios", action="append", metavar="NAME",
                        help="restrict to one scenario (repeatable; "
                             "default: the full matrix)")
    tour_p.add_argument("--workers", type=int, default=1, metavar="N",
                        help="fan the cells out over N processes "
                             "(results are identical to a serial run)")
    tour_p.add_argument("--metrics", default=None, metavar="FILE",
                        help="append per-cell JSONL metrics to FILE")
    tour_p.add_argument("--report", default=None, metavar="FILE",
                        help="write a markdown/HTML run report to FILE")
    tour_p.set_defaults(func=cmd_tournament)

    sim_p = sub.add_parser("simulate", help="run a workload under GreenDIMM")
    sim_p.add_argument("workload")
    sim_p.add_argument("--capacity", type=int, default=0,
                       help="server capacity in GiB (default: 64GB platform)")
    sim_p.add_argument("--block-mb", type=int, default=128)
    sim_p.add_argument("--copies", type=int, default=1)
    sim_p.add_argument("--seed", type=int, default=1)
    sim_p.add_argument("--fault-plan", default=None, metavar="FILE",
                       help="inject the fault plan in FILE")
    sim_p.add_argument("--no-fast-forward", action="store_true",
                       help="force per-epoch stepping through quiescent "
                            "spans (results are identical either way)")
    sim_p.add_argument("--trace", default=None, metavar="FILE",
                       help="enable structured run tracing and append the "
                            "collected events to FILE as JSONL")
    sim_p.set_defaults(func=cmd_simulate)

    fleet_p = sub.add_parser(
        "fleet", help="replay a sharded datacenter trace across servers")
    fleet_p.add_argument("--servers", type=int, default=2, metavar="N")
    fleet_p.add_argument("--hours", type=float, default=2.0,
                         help="trace duration per server")
    fleet_p.add_argument("--seed", type=int, default=7)
    fleet_p.add_argument("--workers", type=int, default=1, metavar="N",
                         help="worker processes for the shard fan-out")
    fleet_p.add_argument("--metrics", default=None, metavar="FILE",
                         help="append per-server JSONL metrics to FILE")
    fleet_p.add_argument("--report", default=None, metavar="FILE",
                         help="write a markdown/HTML run report to FILE "
                              "(enables tracing for the replay)")
    fleet_p.add_argument("--trace", default=None, metavar="FILE",
                         help="enable structured run tracing and append "
                              "the collected events to FILE as JSONL")
    fleet_p.set_defaults(func=cmd_fleet)

    report_p = sub.add_parser(
        "report", help="render a metrics JSONL into a run report")
    report_p.add_argument("metrics", help="metrics JSONL file "
                                          "(from --metrics)")
    report_p.add_argument("--trace", default=None, metavar="FILE",
                          help="fold a trace JSONL (from --trace) into "
                               "the report")
    report_p.add_argument("--out", default=None, metavar="FILE",
                          help="write here instead of stdout (.html "
                               "renders HTML)")
    report_p.add_argument("--title", default=None)
    report_p.add_argument("--html", action="store_true",
                          help="render HTML regardless of the suffix")
    report_p.set_defaults(func=cmd_report)

    bench_p = sub.add_parser(
        "bench", help="time the simulation core, fast path vs per-epoch")
    bench_p.add_argument("--full", action="store_true",
                         help="run the long trace replay (quick mode "
                              "shrinks it for CI smoke runs)")
    bench_p.add_argument("--out", default="BENCH_perf_core.json",
                         metavar="FILE", help="write the JSON document here")
    bench_p.add_argument("--compare", action="store_true",
                         help="gate the fresh numbers against a committed "
                              "baseline document")
    bench_p.add_argument("--baseline", default="BENCH_perf_core.json",
                         metavar="FILE",
                         help="baseline document for --compare")
    bench_p.add_argument("--threshold", type=float, default=0.15,
                         help="calibrated slowdown tolerated by --compare "
                              "(0.15 = 15%%)")
    bench_p.add_argument("--profile", default=None, metavar="FILE",
                         const="bench_profile.pstats", nargs="?",
                         help="cProfile the slowest scenario and write "
                              "the stats dump here (for snakeviz/pstats)")
    bench_p.set_defaults(func=cmd_bench)

    figures_p = sub.add_parser(
        "figures",
        help="regenerate every figure/table and gate the numbers "
             "against the committed expectations")
    figures_p.add_argument(
        "action", choices=("run", "check", "bless"),
        help="run = regenerate + report; check = also fail on drift or "
             "stale expectations; bless = re-pin the expectations")
    figures_p.add_argument("--fast", action="store_true",
                           help="fast-mode experiment settings (the mode "
                                "the committed expectations are pinned at)")
    figures_p.add_argument("--only", action="append", metavar="ID",
                           help="restrict to one experiment (repeatable)")
    figures_p.add_argument("--expected-dir", default=None, metavar="DIR",
                           help="expectation files "
                                "(default: tests/expected/figures)")
    figures_p.add_argument("--report-dir", default=None, metavar="DIR",
                           help="per-figure REPORT.md output "
                                "(default: reports/figures)")
    figures_p.add_argument("--workers", type=int, default=None, metavar="N",
                           help="fan the figures out over N processes "
                                "(default: $GREENDIMM_FIGURES_WORKERS or 1; "
                                "outcomes and reports are byte-identical "
                                "to a serial run)")
    figures_p.set_defaults(func=cmd_figures)

    faults_p = sub.add_parser(
        "faults", help="generate or inspect deterministic fault plans")
    faults_sub = faults_p.add_subparsers(dest="action", required=True)
    storm_p = faults_sub.add_parser(
        "storm", help="expand a seed into a concrete storm plan")
    storm_p.add_argument("--seed", type=int, default=303)
    storm_p.add_argument("--intensity", type=float, default=1.0,
                         help="expected fault windows per 4 s of run")
    storm_p.add_argument("--duration", type=float, default=120.0,
                         metavar="SECONDS")
    storm_p.add_argument("--blocks", type=int, default=64,
                         help="block-index space for targeted rules")
    storm_p.add_argument("--name", default=None,
                         help="plan name (default: derived from the seed)")
    storm_p.add_argument("--out", default=None, metavar="FILE",
                         help="write the plan JSON here instead of stdout")
    storm_p.set_defaults(func=cmd_faults)
    show_p = faults_sub.add_parser(
        "show", help="validate a plan file and summarize its rules")
    show_p.add_argument("plan_file")
    show_p.set_defaults(func=cmd_faults)

    serve_p = sub.add_parser(
        "serve", help="run a resident simulator fleet with a REST "
                      "control plane")
    serve_p.add_argument("--servers", type=int, default=4, metavar="N")
    serve_p.add_argument("--workers", type=int, default=2, metavar="N",
                         help="logical worker shards (elastic at runtime "
                              "via 'repro ctl reshard')")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=8023)
    serve_p.add_argument("--policy", default=None,
                         help="power policy for every server "
                              "(default: greendimm)")
    serve_p.add_argument("--seed", type=int, default=7)
    serve_p.add_argument("--epoch", type=float, default=5.0,
                         metavar="SECONDS")
    serve_p.add_argument("--ksm", action="store_true",
                         help="enable KSM on every server")
    serve_p.add_argument("--churn", action="store_true",
                         help="enable pinned-page churn on every server")
    serve_p.set_defaults(func=cmd_serve, policy="greendimm")

    ctl_p = sub.add_parser(
        "ctl", help="control a running 'repro serve' fleet")
    ctl_p.add_argument("--url", default="http://127.0.0.1:8023",
                       help="service base URL")
    ctl_sub = ctl_p.add_subparsers(dest="action", required=True)
    ctl_sub.add_parser("status", help="fleet summary")
    ctl_sub.add_parser("servers", help="per-server summaries")
    one_p = ctl_sub.add_parser("server", help="one server's detail")
    one_p.add_argument("index", type=int)
    events_p = ctl_sub.add_parser("events", help="daemon decision log")
    events_p.add_argument("index", type=int)
    events_p.add_argument("-n", type=int, default=20,
                          help="events to show")
    ingest_p = ctl_sub.add_parser("ingest", help="admit a VM")
    ingest_p.add_argument("vm_id", type=int)
    ingest_p.add_argument("memory_gib", type=float)
    ingest_p.add_argument("--time", type=float, default=None,
                          help="arrival time (default: service now)")
    ingest_p.add_argument("--lifetime", type=float, default=None,
                          help="seconds until automatic departure")
    ingest_p.add_argument("--vcpus", type=int, default=2)
    ingest_p.add_argument("--image", type=int, default=0,
                          help="image id (shared content for KSM)")
    depart_p = ctl_sub.add_parser("depart", help="retire a VM")
    depart_p.add_argument("vm_id", type=int)
    depart_p.add_argument("--time", type=float, default=None)
    advance_p = ctl_sub.add_parser("advance",
                                   help="tick the fleet clock")
    advance_group = advance_p.add_mutually_exclusive_group(required=True)
    advance_group.add_argument("--until", type=float, metavar="SECONDS")
    advance_group.add_argument("--dt", type=float, metavar="SECONDS")
    snap_p = ctl_sub.add_parser("snapshot",
                                help="checkpoint a server to a file")
    snap_p.add_argument("index", type=int)
    snap_p.add_argument("-o", "--out", required=True, metavar="FILE")
    restore_p = ctl_sub.add_parser(
        "restore", help="restore a server from a checkpoint file")
    restore_p.add_argument("index", type=int)
    restore_p.add_argument("snapshot_file")
    migrate_p = ctl_sub.add_parser(
        "migrate", help="move a server to another worker")
    migrate_p.add_argument("index", type=int)
    migrate_p.add_argument("worker", type=int)
    fault_p = ctl_sub.add_parser(
        "fault", help="arm a fault plan on a live server")
    fault_p.add_argument("index", type=int)
    fault_p.add_argument("plan_file", help="fault plan JSON "
                                           "(see 'repro faults storm')")
    retune_p = ctl_sub.add_parser(
        "retune", help="retune daemon thresholds without restart")
    retune_p.add_argument("overrides", nargs="+", metavar="key=value",
                          help="GreenDIMMConfig fields, e.g. "
                               "off_thr_fraction=0.15")
    retune_p.add_argument("--server", type=int, default=None,
                          help="one server (default: whole fleet)")
    reshard_p = ctl_sub.add_parser(
        "reshard", help="change the worker count (checkpoint-based)")
    reshard_p.add_argument("workers", type=int)
    ctl_sub.add_parser("shutdown", help="stop the service")
    ctl_p.set_defaults(func=cmd_ctl)

    top_p = sub.add_parser("topology", help="inspect a platform")
    top_p.add_argument("--capacity", type=int, default=0)
    top_p.set_defaults(func=cmd_topology)

    val_p = sub.add_parser("validate",
                           help="check model anchors against the paper")
    val_p.set_defaults(func=cmd_validate)
    return parser


def _install_sigterm_handler() -> None:
    """Route SIGTERM through the KeyboardInterrupt path.

    A polite ``kill`` then behaves like Ctrl-C: pools cancel queued
    work, the metrics stream records an interrupted ``suite_end``, and
    the exit code is non-zero — instead of dying mid-write with the
    JSONL stream reading as a complete run.
    """
    import signal

    def _raise(_signum, _frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _raise)
    except ValueError:  # not the main thread (embedded use)
        pass


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    _install_sigterm_handler()
    try:
        return args.func(args)
    except ReproError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
