"""Experiment job descriptions and deterministic execution.

A job is the unit the engine schedules and the cache keys: one
experiment id plus the knobs that change its output.  Jobs are frozen
dataclasses so they pickle cleanly into worker processes and hash
stably into cache keys.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult


@dataclass(frozen=True)
class ExperimentJob:
    """One schedulable experiment run.

    ``seed`` overrides the derived per-job seed; leave it ``None`` for
    the deterministic default (a stable hash of the experiment id), so
    the same job always starts from the same global RNG state whether it
    runs inline or in a worker process.

    ``fault_plan`` is a fault plan in canonical JSON form (see
    :meth:`repro.faults.FaultPlan.canonical`), kept as a string so the
    job pickles into worker processes unchanged and hashes stably into
    cache keys.  The plan is activated process-globally around the run,
    so experiments that build systems without an explicit plan pick it
    up.

    ``fast_forward`` mirrors ``repro run --no-fast-forward``: it sets
    the process-wide simulator default for the duration of the job (see
    :func:`repro.sim.kernel.fast_forward_scope`).  Although the two
    paths are bit-for-bit identical by contract, the flag participates
    in :meth:`config_hash` so a cached fast run can never alias a
    reference run — that equivalence must stay *checkable* from cold
    caches.
    """

    experiment: str
    fast: bool = False
    seed: Optional[int] = None
    fault_plan: Optional[str] = None
    fast_forward: bool = True
    #: Power policy to select process-globally around the run (see
    #: :func:`repro.policies.context.policy_scope`).  ``None`` leaves
    #: the ambient default (the GreenDIMM daemon) in charge, and keeps
    #: pre-policy cache keys and descriptions unchanged.
    policy: Optional[str] = None

    @property
    def job_seed(self) -> int:
        """Stable per-job seed: identical across runs and processes."""
        if self.seed is not None:
            return self.seed
        digest = hashlib.sha256(self.experiment.encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    def config_hash(self) -> str:
        """Hash of everything about this job that can change its output."""
        payload = json.dumps(
            {"experiment": self.experiment, "fast": self.fast,
             "seed": self.job_seed, "fault_plan": self.fault_plan,
             "fast_forward": self.fast_forward, "policy": self.policy},
            sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        tags = []
        if self.fast:
            tags.append("fast")
        if not self.fast_forward:
            tags.append("no-ff")
        if self.policy is not None:
            tags.append(f"policy={self.policy}")
        return self.experiment + (f" ({', '.join(tags)})" if tags else "")


def suite_jobs(names: Optional[Sequence[str]] = None,
               fast: bool = False,
               fault_plan: Optional[str] = None,
               fast_forward: bool = True,
               policy: Optional[str] = None) -> List[ExperimentJob]:
    """Jobs for *names* (or the whole registry), in registry order.

    ``"all"`` anywhere in *names* expands to the full registered suite.
    Unknown names raise :class:`ConfigurationError` before anything runs.
    *fault_plan* (canonical JSON, or ``None``), *fast_forward*, and
    *policy* are stamped onto every job.
    """
    from repro.experiments.registry import runners

    table = runners()
    if names is None or "all" in (names or []):
        selected = list(table)
    else:
        selected = list(names)
        unknown = [n for n in selected if n not in table]
        if unknown:
            raise ConfigurationError(
                f"unknown experiment(s) {', '.join(sorted(unknown))}; "
                f"known: {', '.join(sorted(table))}")
    return [ExperimentJob(experiment=name, fast=fast, fault_plan=fault_plan,
                          fast_forward=fast_forward, policy=policy)
            for name in selected]


def execute_job(job: ExperimentJob) -> ExperimentResult:
    """Run one job to completion in the current process.

    Seeds the global RNG from the job first: the registry's runners all
    carry their own seeded ``random.Random`` instances, but this guards
    any stray module-level randomness so the serial and parallel paths
    produce bitwise-identical results.  A fault plan on the job is
    activated process-globally for the duration of the run, and so are
    the job's fast-forward setting and its power-policy selection.
    """
    from repro.experiments.registry import run_experiment
    from repro.faults.context import active_plan
    from repro.faults.plan import FaultPlan
    from repro.policies.context import policy_scope
    from repro.sim.kernel import fast_forward_scope

    random.seed(job.job_seed)
    plan = (FaultPlan.from_json(job.fault_plan)
            if job.fault_plan is not None else None)
    with active_plan(plan), fast_forward_scope(job.fast_forward), \
            policy_scope(job.policy):
        return run_experiment(job.experiment, fast=job.fast)
