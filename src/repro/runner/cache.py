"""Content-addressed on-disk memoization of experiment results.

Each cache entry is keyed by the SHA-256 of (experiment id, job config
hash, code version), where the code version digests every ``*.py``
source file of the installed ``repro`` package.  Editing any model
source therefore invalidates the whole cache — stale results can never
be replayed — while re-running an unchanged suite is pure cache hits.

An entry is two files under the cache directory:

``<key>.pkl``   the pickled :class:`ExperimentResult`
``<key>.json``  human-auditable metadata (experiment, wall time, key parts)
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import pickle
from typing import Dict, List, Optional, Union

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.runner.jobs import ExperimentJob

PathLike = Union[str, pathlib.Path]

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (memoized per process)."""
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = pathlib.Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(path.read_bytes())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


class ResultCache:
    """On-disk store mapping jobs to finished experiment results."""

    def __init__(self, directory: PathLike,
                 version: Optional[str] = None):
        self.directory = pathlib.Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError) as err:
            raise ConfigurationError(
                f"cache dir {self.directory} is not a directory") from err
        self.version = version or code_version()

    # --- keying ------------------------------------------------------------

    def key(self, job: ExperimentJob) -> str:
        """Content address of *job* under the current code version."""
        payload = json.dumps(
            {"experiment": job.experiment, "config": job.config_hash(),
             "code": self.version},
            sort_keys=True)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def _paths(self, key: str) -> "tuple[pathlib.Path, pathlib.Path]":
        return (self.directory / f"{key}.pkl", self.directory / f"{key}.json")

    # --- store/load --------------------------------------------------------

    def get(self, job: ExperimentJob) -> Optional[ExperimentResult]:
        """The cached result for *job*, or ``None`` on a miss.

        A corrupt or unreadable entry is treated as a miss (and the
        entry is dropped) rather than poisoning the run.
        """
        pkl_path, meta_path = self._paths(self.key(job))
        if not pkl_path.exists():
            return None
        try:
            json.loads(meta_path.read_text())
            with pkl_path.open("rb") as handle:
                result = pickle.load(handle)
        except (OSError, json.JSONDecodeError, pickle.UnpicklingError,
                EOFError, AttributeError, ImportError):
            pkl_path.unlink(missing_ok=True)
            meta_path.unlink(missing_ok=True)
            return None
        if not isinstance(result, ExperimentResult):
            return None
        return result

    def put(self, job: ExperimentJob, result: ExperimentResult,
            wall_s: float = 0.0) -> str:
        """Store *result* for *job*; returns the cache key.

        Writes go through a temporary file + rename so a crashed run
        never leaves a truncated pickle behind.
        """
        key = self.key(job)
        pkl_path, meta_path = self._paths(key)
        tmp = pkl_path.with_suffix(".pkl.tmp")
        with tmp.open("wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(pkl_path)
        meta_tmp = meta_path.with_suffix(".json.tmp")
        meta_tmp.write_text(json.dumps({
            "experiment": job.experiment,
            "fast": job.fast,
            "seed": job.job_seed,
            "config_hash": job.config_hash(),
            "code_version": self.version,
            "wall_s": wall_s,
        }, indent=1) + "\n")
        meta_tmp.replace(meta_path)
        return key

    # --- inspection --------------------------------------------------------

    def entries(self) -> List[Dict[str, object]]:
        """Metadata of every readable entry, sorted by experiment id."""
        out = []
        for meta_path in sorted(self.directory.glob("*.json")):
            try:
                out.append(json.loads(meta_path.read_text()))
            except (OSError, json.JSONDecodeError):
                continue
        return sorted(out, key=lambda m: str(m.get("experiment", "")))

    def clear(self) -> int:
        """Drop every entry; returns the number of results removed."""
        removed = 0
        for path in self.directory.glob("*.pkl"):
            path.unlink(missing_ok=True)
            removed += 1
        for path in self.directory.glob("*.json"):
            path.unlink(missing_ok=True)
        return removed
