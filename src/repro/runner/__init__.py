"""Parallel experiment execution with on-disk result memoization.

The runner takes jobs from :mod:`repro.experiments.registry`, fans them
out over a process pool (``workers > 1``) or runs them inline
(``workers == 1`` — the serial reference path), and caches every
finished :class:`~repro.experiments.common.ExperimentResult` in a
content-addressed on-disk store keyed by (experiment id, job config,
code version).  Re-running an unchanged experiment is a cache hit and
skips the simulation entirely.

Layout
------
``jobs``     job descriptions + deterministic per-job seeding
``cache``    the content-addressed result store
``metrics``  JSONL metrics bus (wall times, hit/miss, utilization)
``engine``   the :class:`ParallelRunner` and the generic ``fan_out``
"""

from repro.runner.cache import ResultCache, code_version
from repro.runner.engine import JobOutcome, ParallelRunner, fan_out
from repro.runner.jobs import ExperimentJob, execute_job, suite_jobs
from repro.runner.metrics import MetricsBus

__all__ = [
    "ExperimentJob",
    "JobOutcome",
    "MetricsBus",
    "ParallelRunner",
    "ResultCache",
    "code_version",
    "execute_job",
    "fan_out",
    "suite_jobs",
]
