"""The runner's metrics bus: JSONL events for the BENCH_* trajectory.

Every scheduling decision emits one event — ``job_start``, ``job_end``
(with wall time and cache hit/miss), ``suite_end`` (with aggregate
counters and worker utilization).  Events accumulate in memory and,
when a path is given, append to a JSONL file so external tooling can
tail a long sweep live.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Union

PathLike = Union[str, pathlib.Path]


class MetricsBus:
    """Collects runner events and mirrors them to an optional JSONL file."""

    def __init__(self, path: Optional[PathLike] = None):
        self.path = pathlib.Path(path) if path else None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self.events: List[Dict[str, object]] = []
        self.cache_hits = 0
        self.cache_misses = 0
        #: Wall-clock ``ts`` is what humans read, but it can step
        #: backwards (NTP, suspend/resume); ``ts_mono`` — monotonic
        #: seconds since bus creation — is what ordering must use.
        self._mono_start = time.monotonic()

    # --- emission ----------------------------------------------------------

    def emit(self, kind: str, **fields: object) -> Dict[str, object]:
        """Record one event; returns it for chaining/inspection."""
        event: Dict[str, object] = {
            "event": kind, "ts": time.time(),
            "ts_mono": time.monotonic() - self._mono_start}
        event.update(fields)
        self.events.append(event)
        if self.path is not None:
            with self.path.open("a") as handle:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return event

    def job_start(self, experiment: str) -> None:
        self.emit("job_start", experiment=experiment)

    def job_end(self, experiment: str, wall_s: float, cached: bool,
                error: Optional[str] = None,
                faults: Optional[Dict[str, int]] = None,
                perf: Optional[Dict[str, int]] = None,
                residency: Optional[Dict[str, object]] = None,
                trace: Optional[Dict[str, object]] = None) -> None:
        """Close a job.  *faults* is the injected-fault counter mapping
        (``op:error -> count``) drained from the job's fault injectors;
        *perf* is the drained simulation perf-counter snapshot (power
        cache hits/misses, epochs fast-forwarded/stepped); *residency*
        is the drained per-power-state account
        (:func:`repro.obs.residency.drain_residency`); *trace* is the
        drained tracer snapshot (:func:`repro.obs.tracer.drain_trace`).
        Each lands in the JSONL event only when non-empty — and each is
        drained on the error path too, so a failed job's counters never
        leak into the next job's event."""
        if cached:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        extra: Dict[str, object] = {}
        if faults:
            extra["faults"] = faults
        if perf:
            extra["perf"] = perf
        if residency:
            extra["residency"] = residency
        if trace:
            extra["trace"] = trace
        self.emit("job_end", experiment=experiment, wall_s=wall_s,
                  cached=cached, error=error, **extra)

    # --- aggregation -------------------------------------------------------

    def job_wall_s(self) -> float:
        """Total wall time spent actually executing (cache misses)."""
        return sum(float(e.get("wall_s", 0.0)) for e in self.events
                   if e["event"] == "job_end" and not e.get("cached"))

    def utilization(self, workers: int, elapsed_s: float) -> float:
        """Mean busy fraction of the worker pool over the suite.

        Clamped to 1.0 for display: per-job wall times are measured in
        the worker while elapsed time is measured in the parent, so
        clock skew can push the ratio a hair over 1.  Use
        :meth:`utilization_raw` when the *unclamped* ratio matters —
        a raw value well above 1.0 means job wall time is being
        over-accounted (e.g. double-counted overlap), and the clamp
        would silently hide that bug.
        """
        return min(1.0, self.utilization_raw(workers, elapsed_s))

    def utilization_raw(self, workers: int, elapsed_s: float) -> float:
        """The unclamped busy ratio; > 1.0 exposes over-accounting."""
        if workers <= 0 or elapsed_s <= 0:
            return 0.0
        return self.job_wall_s() / (workers * elapsed_s)

    def suite_end(self, workers: int, elapsed_s: float,
                  interrupted: bool = False) -> Dict[str, object]:
        """Emit (and return) the closing summary event.

        *interrupted* marks a suite cut short (Ctrl-C / SIGTERM): the
        counters then cover only the jobs that finished before the
        signal, and downstream tooling must not read the run as
        complete.
        """
        return self.emit(
            "suite_end", workers=workers, elapsed_s=elapsed_s,
            interrupted=interrupted,
            jobs=self.cache_hits + self.cache_misses,
            cache_hits=self.cache_hits, cache_misses=self.cache_misses,
            busy_s=self.job_wall_s(),
            utilization=self.utilization(workers, elapsed_s),
            utilization_raw=self.utilization_raw(workers, elapsed_s))
