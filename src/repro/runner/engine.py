"""The parallel execution engine.

``ParallelRunner.run`` resolves cache hits up front, fans the misses
over a :class:`~concurrent.futures.ProcessPoolExecutor` (or runs them
inline when ``workers == 1`` — the serial reference path), and hands
back outcomes in submission order regardless of completion order.
Determinism holds across both paths because every job re-seeds the
global RNG from its stable per-job seed before running, and every
experiment carries its own seeded generators besides.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.faults.context import drain_fault_counts
from repro.obs.residency import drain_residency
from repro.obs.tracer import drain_trace
from repro.perfcounters import drain_perf_counters
from repro.runner.cache import ResultCache
from repro.runner.jobs import ExperimentJob, execute_job
from repro.runner.metrics import MetricsBus

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


@dataclass
class JobOutcome:
    """What happened to one job: a result or an error, plus provenance."""

    job: ExperimentJob
    result: Optional[ExperimentResult]
    wall_s: float
    cached: bool
    error: Optional[str] = None
    faults: Optional[Dict[str, int]] = None
    perf: Optional[Dict[str, int]] = None
    residency: Optional[Dict[str, object]] = None
    trace: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


@dataclass
class _Execution:
    """Everything one job execution produced, success or failure.

    Bundling the drained process-global accounts with the result (and
    with the error, when the job failed) is the fix for a real leak:
    the old error paths returned before draining, so a failed job's
    fault/perf counters sat in the globals and were attributed to the
    *next* job that ran in the same process.
    """

    result: Optional[ExperimentResult]
    wall_s: float
    faults: Dict[str, int]
    perf: Dict[str, int]
    residency: Dict[str, object]
    trace: Dict[str, object]
    error: Optional[str] = None


def _drain_all() -> Tuple[Dict[str, int], Dict[str, int],
                          Dict[str, object], Dict[str, object]]:
    """Drain every process-global account one job may have touched."""
    return (drain_fault_counts(), drain_perf_counters(),
            drain_residency(), drain_trace())


def _timed_execute(job: ExperimentJob) -> _Execution:
    """Worker entry point: run one job and drain its process accounts.

    The fault/perf/residency/trace accounts come from the process-global
    accumulators of the process that ran the job — drained here so they
    survive the trip back from pool workers, and drained on the
    exception path too so a failed job's counters land on *its* outcome
    instead of leaking into the next job's.
    """
    start = time.perf_counter()
    try:
        result: Optional[ExperimentResult] = execute_job(job)
        error = None
    except Exception:  # noqa: BLE001 — one bad job must not kill a sweep
        result = None
        error = traceback.format_exc(limit=8)
    wall = time.perf_counter() - start
    faults, perf, residency, trace = _drain_all()
    return _Execution(result=result, wall_s=wall, faults=faults, perf=perf,
                      residency=residency, trace=trace, error=error)


class ParallelRunner:
    """Schedules experiment jobs over processes with result caching."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional[MetricsBus] = None):
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        self.workers = workers
        self.cache = cache
        self.metrics = metrics or MetricsBus()

    # --- scheduling --------------------------------------------------------

    def run(self, jobs: Sequence[ExperimentJob]) -> List[JobOutcome]:
        """Run every job; outcomes come back in submission order.

        Completion order is whatever the pool produces — the metrics
        stream records it faithfully — but the returned list lines up
        with *jobs* so callers can render deterministically.
        """
        started = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        pending: List[Tuple[int, ExperimentJob]] = []
        for index, job in enumerate(jobs):
            hit = self.cache.get(job) if self.cache is not None else None
            if hit is not None:
                outcomes[index] = JobOutcome(job=job, result=hit,
                                             wall_s=0.0, cached=True)
                self.metrics.job_end(job.experiment, 0.0, cached=True)
            else:
                pending.append((index, job))

        try:
            if pending:
                if self.workers == 1:
                    for index, job in pending:
                        outcomes[index] = self._run_inline(job)
                else:
                    self._run_pool(pending, outcomes)
        except KeyboardInterrupt:
            # Close the metrics stream truthfully before propagating:
            # tooling tailing the JSONL must see the suite end as
            # interrupted, not vanish mid-run or read as complete.
            elapsed = time.perf_counter() - started
            self.metrics.suite_end(self.workers, elapsed,
                                   interrupted=True)
            raise

        elapsed = time.perf_counter() - started
        self.metrics.suite_end(self.workers, elapsed)
        return [o for o in outcomes if o is not None]

    def _run_inline(self, job: ExperimentJob) -> JobOutcome:
        self.metrics.job_start(job.experiment)
        try:
            execution = _timed_execute(job)
        except Exception:  # noqa: BLE001 — a broken harness path (not a
            # job failure: _timed_execute contains those) still must not
            # kill the sweep, and still must not leave the process
            # accounts loaded for the next job.
            faults, perf, residency, trace = _drain_all()
            execution = _Execution(
                result=None, wall_s=0.0, faults=faults, perf=perf,
                residency=residency, trace=trace,
                error=traceback.format_exc(limit=8))
        return self._finish(job, execution)

    def _run_pool(self, pending: Sequence[Tuple[int, ExperimentJob]],
                  outcomes: List[Optional[JobOutcome]]) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            try:
                futures = {}
                for index, job in pending:
                    self.metrics.job_start(job.experiment)
                    futures[pool.submit(_timed_execute, job)] = (index, job)
                remaining = set(futures)
                while remaining:
                    done, remaining = wait(remaining,
                                           return_when=FIRST_COMPLETED)
                    for future in done:
                        index, job = futures[future]
                        try:
                            execution = future.result()
                        except Exception as err:  # noqa: BLE001 — the
                            # worker process itself died; its accounts
                            # died with it.
                            message = "".join(
                                traceback.format_exception_only(
                                    type(err), err)).strip()
                            execution = _Execution(
                                result=None, wall_s=0.0, faults={},
                                perf={}, residency={}, trace={},
                                error=message)
                        outcomes[index] = self._finish(job, execution)
            except KeyboardInterrupt:
                _abort_pool(pool)
                raise

    def _finish(self, job: ExperimentJob, execution: _Execution) -> JobOutcome:
        """Store, meter, and shape one finished execution (either path)."""
        if execution.error is None and execution.result is not None:
            self._store(job, execution.result, execution.wall_s)
        error_line = (execution.error.splitlines()[-1]
                      if execution.error else None)
        self.metrics.job_end(job.experiment, execution.wall_s, cached=False,
                             error=error_line, faults=execution.faults,
                             perf=execution.perf,
                             residency=execution.residency,
                             trace=execution.trace)
        return JobOutcome(job=job, result=execution.result,
                          wall_s=execution.wall_s, cached=False,
                          error=execution.error, faults=execution.faults,
                          perf=execution.perf,
                          residency=execution.residency,
                          trace=execution.trace)

    def _store(self, job: ExperimentJob, result: ExperimentResult,
               wall_s: float) -> None:
        if self.cache is not None:
            self.cache.put(job, result, wall_s)


def _abort_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a pool down *now* for an interrupt.

    ``cancel_futures`` drops everything still queued; terminating the
    worker processes cuts jobs already running.  Without the terminate,
    the executor's exit handler would block until every in-flight job
    ran to completion — exactly what a Ctrl-C / SIGTERM asked to avoid.
    """
    processes = list((getattr(pool, "_processes", None) or {}).values())
    pool.shutdown(wait=False, cancel_futures=True)
    for process in processes:
        process.terminate()


def _drained_call(fn: Callable[[ItemT], ResultT],
                  item: ItemT) -> Tuple[ResultT, float, Dict[str, int],
                                        Dict[str, int], Dict[str, object],
                                        Dict[str, object]]:
    """Run one :func:`fan_out` item and drain its process accounts.

    Module-level (pool-picklable) for the same reason as
    :func:`_timed_execute`: the drains must happen in the process that
    ran the item, or a pool worker's fault/perf/residency/trace
    accumulators never reach the parent's ``job_end`` events.
    """
    t0 = time.perf_counter()
    result = fn(item)
    wall = time.perf_counter() - t0
    faults, perf, residency, trace = _drain_all()
    return result, wall, faults, perf, residency, trace


def fan_out(fn: Callable[[ItemT], ResultT], items: Sequence[ItemT],
            workers: int = 1,
            metrics: Optional[MetricsBus] = None,
            label: Callable[[ItemT], str] = str) -> List[ResultT]:
    """Map a picklable callable over *items*, preserving item order.

    The generic sibling of :class:`ParallelRunner` for drivers (like the
    benchmark sweeps and the fleet) whose unit of work is not a registry
    experiment.  *fn* must be a module-level function (or
    ``functools.partial`` of one) so it can cross the process boundary.
    """
    if workers < 1:
        raise ConfigurationError("need at least one worker")
    bus = metrics or MetricsBus()
    started = time.perf_counter()
    results: List[ResultT] = [None] * len(items)  # type: ignore[list-item]
    try:
        if workers == 1 or len(items) <= 1:
            for index, item in enumerate(items):
                bus.job_start(label(item))
                result, wall, faults, perf, residency, trace = \
                    _drained_call(fn, item)
                results[index] = result
                bus.job_end(label(item), wall, cached=False, faults=faults,
                            perf=perf, residency=residency, trace=trace)
        else:
            from concurrent.futures import as_completed

            with ProcessPoolExecutor(max_workers=workers) as pool:
                try:
                    futures = {}
                    for index, item in enumerate(items):
                        bus.job_start(label(item))
                        futures[pool.submit(_drained_call, fn, item)] = \
                            (index, item)
                    for future in as_completed(futures):
                        index, item = futures[future]
                        result, wall, faults, perf, residency, trace = \
                            future.result()
                        results[index] = result
                        bus.job_end(label(item), wall, cached=False,
                                    faults=faults, perf=perf,
                                    residency=residency, trace=trace)
                except KeyboardInterrupt:
                    _abort_pool(pool)
                    raise
    except KeyboardInterrupt:
        bus.suite_end(workers, time.perf_counter() - started,
                      interrupted=True)
        raise
    bus.suite_end(workers, time.perf_counter() - started)
    return results
