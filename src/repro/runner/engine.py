"""The parallel execution engine.

``ParallelRunner.run`` resolves cache hits up front, fans the misses
over a :class:`~concurrent.futures.ProcessPoolExecutor` (or runs them
inline when ``workers == 1`` — the serial reference path), and hands
back outcomes in submission order regardless of completion order.
Determinism holds across both paths because every job re-seeds the
global RNG from its stable per-job seed before running, and every
experiment carries its own seeded generators besides.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentResult
from repro.faults.context import drain_fault_counts
from repro.perfcounters import drain_perf_counters
from repro.runner.cache import ResultCache
from repro.runner.jobs import ExperimentJob, execute_job
from repro.runner.metrics import MetricsBus

ItemT = TypeVar("ItemT")
ResultT = TypeVar("ResultT")


@dataclass
class JobOutcome:
    """What happened to one job: a result or an error, plus provenance."""

    job: ExperimentJob
    result: Optional[ExperimentResult]
    wall_s: float
    cached: bool
    error: Optional[str] = None
    faults: Optional[Dict[str, int]] = None
    perf: Optional[Dict[str, int]] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.result is not None


def _timed_execute(
        job: ExperimentJob,
) -> Tuple[ExperimentResult, float, Dict[str, int], Dict[str, int]]:
    """Worker entry point: run one job, return (result, wall s, faults,
    perf counters).

    The fault and perf counters come from the process-global
    accumulators of the process that ran the job — drained here so they
    survive the trip back from pool workers.
    """
    start = time.perf_counter()
    result = execute_job(job)
    return (result, time.perf_counter() - start, drain_fault_counts(),
            drain_perf_counters())


class ParallelRunner:
    """Schedules experiment jobs over processes with result caching."""

    def __init__(self, workers: int = 1,
                 cache: Optional[ResultCache] = None,
                 metrics: Optional[MetricsBus] = None):
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        self.workers = workers
        self.cache = cache
        self.metrics = metrics or MetricsBus()

    # --- scheduling --------------------------------------------------------

    def run(self, jobs: Sequence[ExperimentJob]) -> List[JobOutcome]:
        """Run every job; outcomes come back in submission order.

        Completion order is whatever the pool produces — the metrics
        stream records it faithfully — but the returned list lines up
        with *jobs* so callers can render deterministically.
        """
        started = time.perf_counter()
        outcomes: List[Optional[JobOutcome]] = [None] * len(jobs)

        pending: List[Tuple[int, ExperimentJob]] = []
        for index, job in enumerate(jobs):
            hit = self.cache.get(job) if self.cache is not None else None
            if hit is not None:
                outcomes[index] = JobOutcome(job=job, result=hit,
                                             wall_s=0.0, cached=True)
                self.metrics.job_end(job.experiment, 0.0, cached=True)
            else:
                pending.append((index, job))

        if pending:
            if self.workers == 1:
                for index, job in pending:
                    outcomes[index] = self._run_inline(job)
            else:
                self._run_pool(pending, outcomes)

        elapsed = time.perf_counter() - started
        self.metrics.suite_end(self.workers, elapsed)
        return [o for o in outcomes if o is not None]

    def _run_inline(self, job: ExperimentJob) -> JobOutcome:
        self.metrics.job_start(job.experiment)
        try:
            result, wall, faults, perf = _timed_execute(job)
        except Exception:  # noqa: BLE001 — one bad job must not kill a sweep
            wall = 0.0
            message = traceback.format_exc(limit=8)
            self.metrics.job_end(job.experiment, wall, cached=False,
                                 error=message.splitlines()[-1])
            return JobOutcome(job=job, result=None, wall_s=wall,
                              cached=False, error=message)
        self._store(job, result, wall)
        self.metrics.job_end(job.experiment, wall, cached=False,
                             faults=faults, perf=perf)
        return JobOutcome(job=job, result=result, wall_s=wall, cached=False,
                          faults=faults, perf=perf)

    def _run_pool(self, pending: Sequence[Tuple[int, ExperimentJob]],
                  outcomes: List[Optional[JobOutcome]]) -> None:
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = {}
            for index, job in pending:
                self.metrics.job_start(job.experiment)
                futures[pool.submit(_timed_execute, job)] = (index, job)
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining,
                                       return_when=FIRST_COMPLETED)
                for future in done:
                    index, job = futures[future]
                    try:
                        result, wall, faults, perf = future.result()
                    except Exception as err:  # noqa: BLE001
                        message = "".join(traceback.format_exception_only(
                            type(err), err)).strip()
                        self.metrics.job_end(job.experiment, 0.0,
                                             cached=False, error=message)
                        outcomes[index] = JobOutcome(
                            job=job, result=None, wall_s=0.0,
                            cached=False, error=message)
                        continue
                    self._store(job, result, wall)
                    self.metrics.job_end(job.experiment, wall, cached=False,
                                         faults=faults, perf=perf)
                    outcomes[index] = JobOutcome(
                        job=job, result=result, wall_s=wall, cached=False,
                        faults=faults, perf=perf)

    def _store(self, job: ExperimentJob, result: ExperimentResult,
               wall_s: float) -> None:
        if self.cache is not None:
            self.cache.put(job, result, wall_s)


def fan_out(fn: Callable[[ItemT], ResultT], items: Sequence[ItemT],
            workers: int = 1,
            metrics: Optional[MetricsBus] = None,
            label: Callable[[ItemT], str] = str) -> List[ResultT]:
    """Map a picklable callable over *items*, preserving item order.

    The generic sibling of :class:`ParallelRunner` for drivers (like the
    benchmark sweeps) whose unit of work is not a registry experiment.
    *fn* must be a module-level function (or ``functools.partial`` of
    one) so it can cross the process boundary.
    """
    if workers < 1:
        raise ConfigurationError("need at least one worker")
    bus = metrics or MetricsBus()
    started = time.perf_counter()
    results: List[ResultT] = [None] * len(items)  # type: ignore[list-item]
    if workers == 1 or len(items) <= 1:
        for index, item in enumerate(items):
            bus.job_start(label(item))
            t0 = time.perf_counter()
            results[index] = fn(item)
            bus.job_end(label(item), time.perf_counter() - t0, cached=False)
    else:
        from concurrent.futures import as_completed

        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {}
            for index, item in enumerate(items):
                bus.job_start(label(item))
                futures[pool.submit(fn, item)] = (index, item,
                                                  time.perf_counter())
            for future in as_completed(futures):
                index, item, t0 = futures[future]
                results[index] = future.result()
                bus.job_end(label(item), time.perf_counter() - t0,
                            cached=False)
    bus.suite_end(workers, time.perf_counter() - started)
    return results
