"""DDR4 timing parameters.

Only the parameters the reproduction's performance and low-power models
consume are included.  The two numbers the paper leans on repeatedly are
the low-power exit latencies (Section 2.2): 18 ns to leave power-down and
768 ns to leave self-refresh (dominated by DLL re-lock).  GreenDIMM's deep
power-down keeps the DLL on, so its exit latency is bounded by the
power-down exit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NANOSECOND


@dataclass(frozen=True)
class DDR4Timing:
    """Timing of one speed grade, in nanoseconds unless noted.

    Attributes
    ----------
    tck_ns: clock period (DDR: two transfers per cycle).
    cl_ns: CAS latency.
    trcd_ns: ACT-to-READ/WRITE delay.
    trp_ns: precharge time.
    tras_ns: ACT-to-PRE minimum.
    trfc_ns: refresh cycle time for one REF command.
    trefi_ns: average refresh interval (7.8 us at normal temperature).
    txp_ns: power-down exit to first command (the 18 ns of Section 2.2).
    txs_ns: self-refresh exit to first command (the 768 ns of Section 2.2).
    tcke_ns: minimum CKE low/high pulse width.
    burst_length: transfers per column access (8 for DDR4).
    """

    name: str
    tck_ns: float
    cl_ns: float
    trcd_ns: float
    trp_ns: float
    tras_ns: float
    trfc_ns: float
    trefi_ns: float = 7800.0
    txp_ns: float = 18.0
    txs_ns: float = 768.0
    tcke_ns: float = 5.0
    burst_length: int = 8

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise ConfigurationError("tck must be positive")
        if self.txs_ns < self.txp_ns:
            raise ConfigurationError("self-refresh exit cannot be faster than power-down exit")

    @property
    def data_rate_mtps(self) -> float:
        """Data rate in mega-transfers per second."""
        return 2000.0 / self.tck_ns

    @property
    def channel_peak_bandwidth_bytes_per_s(self) -> float:
        """Peak bandwidth of one 64-bit channel in bytes/second."""
        return self.data_rate_mtps * 1e6 * 8

    @property
    def burst_duration_ns(self) -> float:
        """Time the data bus is occupied by one burst (BL/2 clocks)."""
        return self.burst_length / 2 * self.tck_ns

    @property
    def row_cycle_ns(self) -> float:
        """tRC: ACT-to-ACT on the same bank."""
        return self.tras_ns + self.trp_ns

    @property
    def random_access_latency_ns(self) -> float:
        """Idle-bank closed-row access latency: tRCD + CL + burst."""
        return self.trcd_ns + self.cl_ns + self.burst_duration_ns

    @property
    def refresh_duty_cycle(self) -> float:
        """Fraction of time a rank is busy refreshing (tRFC / tREFI)."""
        return self.trfc_ns / self.trefi_ns

    def ns(self, value_ns: float) -> float:
        """Convert a nanosecond figure to seconds (readability helper)."""
        return value_ns * NANOSECOND


#: DDR4-2133 (the paper's DIMM speed grade), 4Gb-device tRFC.
DDR4_2133 = DDR4Timing(
    name="DDR4-2133",
    tck_ns=0.9375,
    cl_ns=14.06,
    trcd_ns=14.06,
    trp_ns=14.06,
    tras_ns=33.0,
    trfc_ns=260.0,
)

#: DDR4-2133 timing with the 8Gb-device refresh cycle (tRFC=350ns).
DDR4_2133_8GB = DDR4Timing(
    name="DDR4-2133-8Gb",
    tck_ns=0.9375,
    cl_ns=14.06,
    trcd_ns=14.06,
    trp_ns=14.06,
    tras_ns=33.0,
    trfc_ns=350.0,
)


def at_high_temperature(timing: DDR4Timing) -> DDR4Timing:
    """The same speed grade above 85C: JEDEC halves the refresh interval
    (2x refresh), doubling refresh power and command overhead."""
    from dataclasses import replace

    return replace(timing, name=f"{timing.name}-2x-refresh",
                   trefi_ns=timing.trefi_ns / 2)
