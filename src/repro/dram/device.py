"""DRAM device geometry.

A *device* (chip) is the unit soldered on a DIMM.  The paper's running
example (Section 4.1, Figure 5) is a DDR4 x8 4Gb device: 16 banks, each
bank with 64 sub-arrays, each sub-array with 16 MATs of 512 rows x 512
columns.  The global row decoder consumes the top ``M`` row-address bits to
pick a sub-array; the local decoder consumes the rest to pick a row inside
it.  Those two decoders are exactly what makes a sub-array an addressable —
and therefore power-gateable — unit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import is_power_of_two, log2_int


@dataclass(frozen=True)
class DRAMDeviceConfig:
    """Geometry of one DRAM device (chip).

    Parameters
    ----------
    density_bits:
        Total capacity of the device in bits (e.g. ``4 * 2**30`` for 4Gb).
    width:
        I/O width in bits: 4, 8, or 16 (x4 / x8 / x16 devices).
    banks:
        Number of banks per device (16 for DDR4).
    subarrays_per_bank:
        Number of sub-arrays a bank's global row decoder can select.
    mats_per_subarray:
        MATs per sub-array; a MAT is 512 rows x 512 columns of cells.
    rows_per_subarray:
        Rows selectable by the local row decoder inside one sub-array.
    """

    name: str
    density_bits: int
    width: int
    banks: int = 16
    subarrays_per_bank: int = 64
    mats_per_subarray: int = 16
    rows_per_subarray: int = 512

    def __post_init__(self) -> None:
        if self.width not in (4, 8, 16):
            raise ConfigurationError(f"unsupported device width x{self.width}")
        for attr in ("density_bits", "banks", "subarrays_per_bank",
                     "mats_per_subarray", "rows_per_subarray"):
            if not is_power_of_two(getattr(self, attr)):
                raise ConfigurationError(f"{attr} must be a power of two")
        if self.row_bits <= self.subarray_bits:
            raise ConfigurationError(
                "device has no local-row bits: too many sub-arrays per bank")

    # --- derived geometry ---------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        """Capacity of this single device in bytes."""
        return self.density_bits // 8

    @property
    def bank_bits_count(self) -> int:
        """Bits of a device address that select the bank."""
        return log2_int(self.banks)

    @property
    def rows_per_bank(self) -> int:
        """Rows in one bank (all sub-arrays)."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def row_bits(self) -> int:
        """Width of the full row address (``N`` in the paper)."""
        return log2_int(self.rows_per_bank)

    @property
    def subarray_bits(self) -> int:
        """Top row-address bits consumed by the global decoder (``M``)."""
        return log2_int(self.subarrays_per_bank)

    @property
    def local_row_bits(self) -> int:
        """Row-address bits consumed by the local decoder inside a sub-array."""
        return self.row_bits - self.subarray_bits

    @property
    def row_size_bits(self) -> int:
        """Bits stored in one row of this device (the device's page size)."""
        return self.density_bits // (self.banks * self.rows_per_bank)

    @property
    def columns_per_row(self) -> int:
        """Column locations per row, ``width`` bits each."""
        return self.row_size_bits // self.width

    @property
    def subarray_bits_capacity(self) -> int:
        """Capacity of one sub-array of this device, in bits."""
        return self.row_size_bits * self.rows_per_subarray


#: DDR4 x8 4Gb device — the paper's Figure 5 example and the device used in
#: the 8GB DIMMs of the SPEC evaluation platform (Section 6.1).
DDR4_4GB_X8 = DRAMDeviceConfig(name="DDR4-4Gb-x8", density_bits=4 * (1 << 30), width=8)

#: DDR4 x4 8Gb device — used in the 32GB DIMMs of the Azure-trace platform.
DDR4_8GB_X4 = DRAMDeviceConfig(name="DDR4-8Gb-x4", density_bits=8 * (1 << 30), width=4)

#: DDR4 x8 8Gb device — used for large-capacity scaling studies.
DDR4_8GB_X8 = DRAMDeviceConfig(name="DDR4-8Gb-x8", density_bits=8 * (1 << 30), width=8)
