"""Physical-address mapping with channel/rank/bank interleaving.

Reproduces the mapping of Figure 5: with interleaving, the low-order bits
of a physical address (above the 64-byte line offset) select the channel,
bank, and rank, so that a contiguous address stream fans out across the
whole memory system; the *most significant* bits select the row, and the
top ``M`` bits of the row select the sub-array.  Consequently the top bits
of the physical address identify a **sub-array group** — the same
sub-array index in every channel, rank, and bank — and a contiguous block
of physical addresses maps onto exactly one group.  That is the property
GreenDIMM's power-management unit exploits.

The non-interleaved mapping places channel and rank in the *top* bits
(whole-rank contiguity), which is what the paper's "w/o interleaving"
baseline experiments configure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dram.organization import MemoryOrganization
from repro.errors import AddressError, ConfigurationError
from repro.units import is_power_of_two, log2_int

#: Cache-line (bus burst) size in bytes: 8 bytes x burst length 8.
LINE_SIZE = 64
LINE_BITS = 6

_FIELDS = ("offset", "channel", "bank", "rank", "column", "local_row", "subarray")


@dataclass(frozen=True)
class DecodedAddress:
    """A physical address decoded into DRAM coordinates.

    ``rank`` is the rank index within the channel (DIMM-slot ranks are
    flattened).  ``row`` is the full row address whose top bits are the
    sub-array index (global decoder) and low bits the local row.
    """

    channel: int
    rank: int
    bank: int
    subarray: int
    local_row: int
    column: int
    offset: int

    def row(self, local_row_bits: int) -> int:
        """Full row address given the device's local-row bit width."""
        return (self.subarray << local_row_bits) | self.local_row

    def coordinates(self) -> Tuple[int, int, int]:
        """(channel, rank, bank) triple, the controller's scheduling unit."""
        return (self.channel, self.rank, self.bank)


class AddressMapping:
    """Bidirectional physical-address <-> DRAM-coordinate mapping.

    Parameters
    ----------
    organization:
        The memory topology to map.
    interleaved:
        When True (default, matching commodity servers), channel, bank and
        rank bits sit just above the line offset; when False they sit at
        the top of the address, giving whole-rank contiguity.
    """

    def __init__(self, organization: MemoryOrganization,
                 interleaved: bool = True, xor_bank_hash: bool = False):
        self.organization = organization
        self.interleaved = interleaved
        #: Commodity controllers XOR low row bits into the bank index so
        #: row-conflicting strides spread over banks.  The hash is an
        #: involution on the bank field, so decode/encode stay bijective
        #: — and, crucially for GreenDIMM, it only permutes *which* bank
        #: serves an address: the top-of-address sub-array bits are
        #: untouched, so sub-array groups stay contiguous.
        self.xor_bank_hash = xor_bank_hash
        device = organization.device

        line_bytes_per_rank_row = (device.row_size_bits // 8) * organization.devices_per_rank
        if line_bytes_per_rank_row % LINE_SIZE:
            raise ConfigurationError("rank row is not line aligned")
        column_lines = line_bytes_per_rank_row // LINE_SIZE
        if not is_power_of_two(column_lines):
            raise ConfigurationError("column count must be a power of two")

        bits = {
            "offset": LINE_BITS,
            "channel": log2_int(organization.channels),
            "bank": device.bank_bits_count,
            "rank": log2_int(organization.ranks_per_channel),
            "column": log2_int(column_lines),
            "local_row": device.local_row_bits,
            "subarray": device.subarray_bits,
        }
        if interleaved:
            # Column bits sit below bank/rank so a sequential sweep stays
            # in the open row of each channel (page-open friendly), while
            # channel bits right above the line offset give line-granular
            # channel interleaving; the sub-array index stays on top.
            order = ["offset", "channel", "column", "bank", "rank",
                     "local_row", "subarray"]
        else:
            order = ["offset", "column", "bank", "local_row", "subarray",
                     "rank", "channel"]
        self._layout: List[Tuple[str, int, int]] = []  # (field, shift, width)
        shift = 0
        for name in order:
            self._layout.append((name, shift, bits[name]))
            shift += bits[name]
        self.address_bits = shift
        if (1 << shift) != organization.total_capacity_bytes:
            raise ConfigurationError(
                f"address bits ({shift}) do not cover capacity "
                f"({organization.total_capacity_bytes})")
        self._bits = bits
        self._shifts: Dict[str, Tuple[int, int]] = {
            name: (fshift, width) for name, fshift, width in self._layout
        }

    # --- decode / encode --------------------------------------------------

    @property
    def capacity_bytes(self) -> int:
        return self.organization.total_capacity_bytes

    def field(self, address: int, name: str) -> int:
        """Extract one named field from *address*."""
        shift, width = self._shifts[name]
        return (address >> shift) & ((1 << width) - 1)

    def _bank_hash(self, bank: int, local_row: int) -> int:
        """XOR the low row bits into the bank index (an involution)."""
        if not self.xor_bank_hash:
            return bank
        _shift, width = self._shifts["bank"]
        return bank ^ (local_row & ((1 << width) - 1))

    def decode(self, address: int) -> DecodedAddress:
        """Decode a physical byte address into DRAM coordinates."""
        if not 0 <= address < self.capacity_bytes:
            raise AddressError(f"address {address:#x} out of range")
        local_row = self.field(address, "local_row")
        return DecodedAddress(
            channel=self.field(address, "channel"),
            rank=self.field(address, "rank"),
            bank=self._bank_hash(self.field(address, "bank"), local_row),
            subarray=self.field(address, "subarray"),
            local_row=local_row,
            column=self.field(address, "column"),
            offset=self.field(address, "offset"),
        )

    def encode(self, decoded: DecodedAddress) -> int:
        """Inverse of :meth:`decode` (the bank hash is self-inverse)."""
        address = 0
        for name, shift, width in self._layout:
            value = getattr(decoded, name)
            if name == "bank":
                value = self._bank_hash(value, decoded.local_row)
            if not 0 <= value < (1 << width):
                raise AddressError(f"{name}={value} exceeds {width} bits")
            address |= value << shift
        return address

    # --- GreenDIMM-specific views ------------------------------------------

    @property
    def subarray_group_count(self) -> int:
        """Independently power-gateable sub-array groups (always 64 here)."""
        return self.organization.device.subarrays_per_bank

    @property
    def subarray_group_bytes(self) -> int:
        """Capacity of one sub-array group."""
        return self.capacity_bytes // self.subarray_group_count

    def subarray_group_of(self, address: int) -> int:
        """Sub-array-group index owning *address*.

        With interleaving this is simply the top ``M`` bits of the address;
        without interleaving addresses of one group are scattered (which is
        why plain rank power management needs interleaving disabled).
        """
        if not 0 <= address < self.capacity_bytes:
            raise AddressError(f"address {address:#x} out of range")
        return self.field(address, "subarray")

    def group_is_contiguous(self) -> bool:
        """True when each sub-array group is one contiguous address range.

        This is the interleaving-agnosticism property of Section 4.1: it
        holds exactly when the sub-array bits are the top address bits.
        """
        top_field, _, _ = self._layout[-1]
        return top_field == "subarray"

    def group_address_range(self, group: int) -> Tuple[int, int]:
        """[start, end) physical range of *group* (interleaved mapping only)."""
        if not self.group_is_contiguous():
            raise AddressError(
                "sub-array groups are not contiguous without interleaving")
        if not 0 <= group < self.subarray_group_count:
            raise AddressError(f"group {group} out of range")
        size = self.subarray_group_bytes
        return group * size, (group + 1) * size

    def groups_of_range(self, start: int, length: int) -> Sequence[int]:
        """Sub-array groups overlapped by the range [start, start+length)."""
        if length <= 0:
            raise AddressError("length must be positive")
        if start < 0 or start + length > self.capacity_bytes:
            raise AddressError("range out of bounds")
        if not self.group_is_contiguous():
            return tuple(range(self.subarray_group_count))
        size = self.subarray_group_bytes
        first = start // size
        last = (start + length - 1) // size
        return tuple(range(first, last + 1))
