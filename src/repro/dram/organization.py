"""Main-memory topology: channels, DIMMs, ranks, and derived totals.

Mirrors the two evaluation platforms of Section 6.1:

* ``spec_server_memory()`` — 64GB: four channels, each with two DIMM slots,
  holding eight 4Gb 2R x8 DDR4-2133 8GB DIMMs (16 ranks total).
* ``azure_server_memory()`` — 256GB: eight 8Gb 2R x4 DDR4-2133 32GB DIMMs.

The topology object is pure geometry; power and timing live in
``repro.power`` and ``repro.dram.timing``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.device import (
    DDR4_4GB_X8,
    DDR4_8GB_X4,
    DDR4_8GB_X8,
    DRAMDeviceConfig,
)
from repro.errors import ConfigurationError
from repro.units import GIB, is_power_of_two


@dataclass(frozen=True)
class MemoryOrganization:
    """Topology of the server's main memory.

    A rank always presents a 64-bit data path, so it holds ``64 / width``
    devices (ECC devices are ignored: they track the data devices' power
    states and scale power multiplicatively if desired).
    """

    device: DRAMDeviceConfig
    channels: int = 4
    dimms_per_channel: int = 2
    ranks_per_dimm: int = 2

    def __post_init__(self) -> None:
        for attr in ("channels", "dimms_per_channel", "ranks_per_dimm"):
            if not is_power_of_two(getattr(self, attr)):
                raise ConfigurationError(f"{attr} must be a power of two")

    # --- counts ---------------------------------------------------------

    @property
    def devices_per_rank(self) -> int:
        """Data devices per rank (64-bit bus / device width)."""
        return 64 // self.device.width

    @property
    def ranks_per_channel(self) -> int:
        return self.dimms_per_channel * self.ranks_per_dimm

    @property
    def total_dimms(self) -> int:
        return self.channels * self.dimms_per_channel

    @property
    def total_ranks(self) -> int:
        return self.channels * self.ranks_per_channel

    @property
    def total_devices(self) -> int:
        return self.total_ranks * self.devices_per_rank

    @property
    def total_banks(self) -> int:
        """Logical banks visible to the memory controllers (per-rank x ranks)."""
        return self.total_ranks * self.device.banks

    # --- capacities -----------------------------------------------------

    @property
    def rank_capacity_bytes(self) -> int:
        return self.device.capacity_bytes * self.devices_per_rank

    @property
    def dimm_capacity_bytes(self) -> int:
        return self.rank_capacity_bytes * self.ranks_per_dimm

    @property
    def total_capacity_bytes(self) -> int:
        return self.dimm_capacity_bytes * self.total_dimms

    @property
    def logical_bank_capacity_bytes(self) -> int:
        """Capacity of one logical bank: the lock-stepped physical banks."""
        return self.rank_capacity_bytes // self.device.banks

    @property
    def subarray_group_slice_bytes(self) -> int:
        """Bytes one sub-array contributes across the devices of a rank.

        In the Figure 5 example this is 4MB: a 4Mb sub-array replicated
        lock-step across the eight x8 devices of the rank.
        """
        return (self.device.subarray_bits_capacity // 8) * self.devices_per_rank

    @property
    def min_power_unit_bytes(self) -> int:
        """Capacity of the minimum power-management unit (Section 4.1).

        One sub-array group: the sub-arrays with the same sub-array index
        across every channel, rank, and bank.  Always ``1 /
        subarrays_per_bank`` of the total capacity (1.5625% for 64
        sub-arrays), independent of channel/rank counts.
        """
        return self.total_capacity_bytes // self.device.subarrays_per_bank

    @property
    def num_subarray_groups(self) -> int:
        """Number of minimum power units — always ``subarrays_per_bank``."""
        return self.device.subarrays_per_bank

    def describe(self) -> str:
        """One-line human summary, e.g. for experiment logs."""
        return (
            f"{self.total_capacity_bytes // GIB}GB: {self.channels}ch x "
            f"{self.dimms_per_channel}dimm x {self.ranks_per_dimm}rank "
            f"({self.device.name}, {self.devices_per_rank} devices/rank)"
        )


def spec_server_memory() -> MemoryOrganization:
    """The 64GB SPEC/data-center platform of Section 6.1."""
    return MemoryOrganization(device=DDR4_4GB_X8, channels=4,
                              dimms_per_channel=2, ranks_per_dimm=2)


def azure_server_memory() -> MemoryOrganization:
    """The 256GB Azure-VM-trace platform of Section 6.1."""
    return MemoryOrganization(device=DDR4_8GB_X4, channels=4,
                              dimms_per_channel=2, ranks_per_dimm=2)


def scaled_server_memory(capacity_gib: int) -> MemoryOrganization:
    """A platform scaled to *capacity_gib* for the Figure 13 capacity sweep.

    Uses 8Gb x8 devices (8GB ranks) and grows DIMM count with capacity,
    mirroring the paper's linear extrapolation from the 256GB measurement.
    """
    if capacity_gib % 64:
        raise ConfigurationError("capacity must be a multiple of 64 GiB")
    base = MemoryOrganization(device=DDR4_8GB_X8, channels=4,
                              dimms_per_channel=1, ranks_per_dimm=2)
    per_base = base.total_capacity_bytes // GIB  # 64 GiB
    factor = capacity_gib // per_base
    if not is_power_of_two(factor):
        raise ConfigurationError("capacity / 64 GiB must be a power of two")
    # Grow DIMMs per channel first (up to 4 slots), then ranks per DIMM.
    dimms, ranks = 1, 2
    while factor > 1:
        if dimms < 4:
            dimms *= 2
        else:
            ranks *= 2
        factor //= 2
    return MemoryOrganization(device=DDR4_8GB_X8, channels=4,
                              dimms_per_channel=dimms, ranks_per_dimm=ranks)
