"""DRAM organization substrate.

Models the hierarchy the paper builds on (Section 2.1): channels hold DIMMs,
DIMMs hold ranks, a rank is a set of x4/x8/x16 devices providing a 64-bit
data path, each device holds banks, each bank is split into sub-arrays of
MATs.  The address-mapping module reproduces the interleaving scheme of
Figure 5 and exposes the sub-array-group decoding that makes GreenDIMM's
power-management unit interleaving-agnostic.
"""

from repro.dram.device import DRAMDeviceConfig, DDR4_4GB_X8, DDR4_8GB_X4, DDR4_8GB_X8
from repro.dram.organization import MemoryOrganization, spec_server_memory, azure_server_memory
from repro.dram.timing import DDR4Timing, DDR4_2133
from repro.dram.address import AddressMapping, DecodedAddress

__all__ = [
    "DRAMDeviceConfig",
    "DDR4_4GB_X8",
    "DDR4_8GB_X4",
    "DDR4_8GB_X8",
    "MemoryOrganization",
    "spec_server_memory",
    "azure_server_memory",
    "DDR4Timing",
    "DDR4_2133",
    "AddressMapping",
    "DecodedAddress",
]
