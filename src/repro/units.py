"""Size, time, and power units used throughout the reproduction.

All byte quantities in this library are plain ``int`` bytes, all times are
``float`` seconds, and all powers are ``float`` watts unless a name says
otherwise.  These helpers exist so that configuration code reads like the
paper ("128MB memory blocks", "18ns exit latency") instead of raw powers of
two and exponents.
"""

from __future__ import annotations

# --- sizes (binary powers, as DRAM capacities are) -------------------------

KIB: int = 1 << 10
MIB: int = 1 << 20
GIB: int = 1 << 30
TIB: int = 1 << 40

#: Size of an OS page in bytes (x86-64 base page).
PAGE_SIZE: int = 4 * KIB

#: Default Linux memory-block size for on/off-lining on x86-64.
DEFAULT_MEMORY_BLOCK_SIZE: int = 128 * MIB

# --- bandwidth ---------------------------------------------------------------

#: Aggregate DRAM bandwidth at which the simulator treats the memory
#: system as fully active (active residency 1.0).  Roughly the sustained
#: throughput of the evaluation platform's loaded channels; the server
#: simulator maps achieved bandwidth / this peak onto the power model's
#: ACTIVE_STANDBY residency.
PEAK_DRAM_BANDWIDTH_BYTES_PER_S: float = 20e9

# --- times ------------------------------------------------------------------

NANOSECOND: float = 1e-9
MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3
SECOND: float = 1.0
MINUTE: float = 60.0
HOUR: float = 3600.0


def mib(n: float) -> int:
    """Return *n* mebibytes as an integer byte count."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Return *n* gibibytes as an integer byte count."""
    return int(n * GIB)


def to_gib(n_bytes: int) -> float:
    """Return a byte count as (fractional) gibibytes."""
    return n_bytes / GIB


def to_mib(n_bytes: int) -> float:
    """Return a byte count as (fractional) mebibytes."""
    return n_bytes / MIB


def pages_of(n_bytes: int) -> int:
    """Return the number of 4 KiB pages covering *n_bytes*.

    Raises :class:`ValueError` when *n_bytes* is not page aligned, because
    every region this library manages (memory blocks, sub-array groups) is
    page aligned by construction and a misaligned size indicates a bug.
    """
    if n_bytes % PAGE_SIZE:
        raise ValueError(f"size {n_bytes} is not a multiple of PAGE_SIZE")
    return n_bytes // PAGE_SIZE


def is_power_of_two(n: int) -> bool:
    """Return True when *n* is a positive power of two."""
    return n > 0 and (n & (n - 1)) == 0


def log2_int(n: int) -> int:
    """Return log2 of a power-of-two integer, raising otherwise."""
    if not is_power_of_two(n):
        raise ValueError(f"{n} is not a power of two")
    return n.bit_length() - 1


def format_bytes(n_bytes: int) -> str:
    """Render a byte count with a binary suffix, e.g. ``'128MiB'``."""
    for suffix, unit in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n_bytes >= unit and n_bytes % unit == 0:
            return f"{n_bytes // unit}{suffix}"
    for suffix, unit in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n_bytes >= unit:
            return f"{n_bytes / unit:.2f}{suffix}"
    return f"{n_bytes}B"
