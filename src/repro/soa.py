"""Structure-of-arrays state stores for the hot simulation paths.

The epoch-stepped simulator keeps its authoritative state in small
Python objects — :class:`~repro.os.page.BlockAccounting` counters in the
memory manager, the offline set in the hot-plug manager, the gating
bitmask in the controller register.  Those objects are cheap to *update*
(a Python attribute add is ~4x faster than a numpy scalar store) but
expensive to *scan*: every monitor pass used to rebuild the
fully-offline group set by walking the whole block <-> group topology
through the address-mapping property chain.

This module holds the numpy mirrors that make the scans cheap:

* :class:`BlockStateStore` — per-memory-block footprint and offline
  status as ``int64``/``bool`` arrays.  The memory manager marks blocks
  dirty on the extent hot path (a set add) and flushes them in bulk at
  observation points (:meth:`BlockStateStore.sync`), so the arrays are
  a write-back mirror of the per-block accounting objects.
* :class:`GroupGateStore` — per-sub-array-group coverage counts, gate
  flags, and offline/gated residency clocks, updated *incrementally* at
  block offline/online events.  Gate-eligibility queries become O(groups)
  vectorized compares instead of O(groups x blocks) address-layer
  traversals per event.

Both stores are mirrors, never the source of truth; the property tests
in ``tests/test_soa.py`` replay randomized daemon/hot-plug/fault
sequences and assert the arrays match the objects exactly.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

__all__ = [
    "BlockStateStore",
    "GroupGateStore",
    "accumulate_energy",
    "batched_times",
    "emit_replicated",
    "monitor_timer_after",
]


class BlockStateStore:
    """numpy mirror of the per-memory-block footprint and offline state.

    Owned by :class:`~repro.os.mm.PhysicalMemoryManager`.  The extent
    register/unregister hot path only records the touched block index in
    ``_dirty`` (cheap); :meth:`sync` flushes the dirty counters into the
    arrays.  Offline transitions are rare daemon events and update the
    ``offline`` array directly.
    """

    def __init__(self, num_blocks: int):
        self.num_blocks = num_blocks
        self.used_pages = np.zeros(num_blocks, dtype=np.int64)
        self.unmovable_pages = np.zeros(num_blocks, dtype=np.int64)
        self.offline = np.zeros(num_blocks, dtype=bool)
        self._dirty: "set[int]" = set()

    # --- hot-path hooks ---------------------------------------------------

    def mark_dirty(self, block: int) -> None:
        """Record that *block*'s counters changed (flushed by :meth:`sync`)."""
        self._dirty.add(block)

    def mark_offline(self, block: int) -> None:
        self.offline[block] = True

    def mark_online(self, block: int) -> None:
        self.offline[block] = False

    # --- synchronization --------------------------------------------------

    def sync(self, accounting: Sequence) -> "BlockStateStore":
        """Flush dirty per-block counters from *accounting* into the arrays.

        *accounting* is the memory manager's ``BlockAccounting`` list; only
        blocks touched since the last sync are re-read.
        """
        if self._dirty:
            used = self.used_pages
            unmovable = self.unmovable_pages
            for block in self._dirty:
                acct = accounting[block]
                used[block] = acct.used_pages
                unmovable[block] = acct.unmovable_pages
            self._dirty.clear()
        return self

    # --- checkpoint/restore -----------------------------------------------

    def state_dict(self) -> dict:
        """Mutable mirror state (arrays + pending dirty set)."""
        return {"used_pages": self.used_pages,
                "unmovable_pages": self.unmovable_pages,
                "offline": self.offline,
                "dirty": self._dirty}

    def load_state_dict(self, state: dict) -> None:
        # In-place copies: external code may hold views of the arrays.
        self.used_pages[:] = state["used_pages"]
        self.unmovable_pages[:] = state["unmovable_pages"]
        self.offline[:] = state["offline"]
        self._dirty = set(state["dirty"])

    # --- vectorized views -------------------------------------------------

    @property
    def free_mask(self) -> np.ndarray:
        """Blocks with no allocated pages (callers must :meth:`sync` first)."""
        return self.used_pages == 0

    @property
    def removable_mask(self) -> np.ndarray:
        """Blocks with no unmovable pages (the sysfs ``removable`` flag)."""
        return self.unmovable_pages == 0


class GroupGateStore:
    """numpy mirror of sub-array-group coverage, gating, and residency.

    Owned by :class:`~repro.core.power_control.GreenDIMMPowerControl`.
    ``cover[g]`` counts how many of group *g*'s covering blocks are
    off-lined; a group is *fully offline* when ``cover[g]`` reaches
    ``blocks_per_group``.  With pair gating, eligibility additionally
    requires the sense-amp partner (``g ^ 1``) to be fully offline; the
    partner check is one vectorized gather over the XOR-reindexed mask.

    The store also keeps the per-block and per-group power residency
    clocks (time spent offline / gated), updated at event granularity.
    """

    def __init__(self, num_blocks: int, num_groups: int,
                 blocks_per_group: int,
                 groups_of_block: Sequence[Sequence[int]],
                 pair_gating: bool = True):
        self.num_blocks = num_blocks
        self.num_groups = num_groups
        self.blocks_per_group = blocks_per_group
        self.pair_gating = pair_gating
        #: Static topology: the groups each block overlaps.
        self._groups_of_block: List[tuple] = [
            tuple(groups) for groups in groups_of_block]
        #: The sense-amp partner of each group (Section 6.1's pairing).
        self._pair = np.arange(num_groups) ^ 1
        self.cover = np.zeros(num_groups, dtype=np.int64)
        self.gated = np.zeros(num_groups, dtype=bool)
        self.offline = np.zeros(num_blocks, dtype=bool)
        self.offline_since_s = np.full(num_blocks, np.nan)
        self.offline_total_s = np.zeros(num_blocks)
        self.gated_since_s = np.full(num_groups, np.nan)
        self.gated_total_s = np.zeros(num_groups)
        # Hot-query side indexes: at 64 groups, set membership beats
        # numpy's per-call constants; the arrays above stay authoritative
        # for bulk views and the property tests assert they agree.
        self._full: "set[int]" = set()
        self._gated_set: "set[int]" = set()

    # --- block events -----------------------------------------------------

    def block_offlined(self, block: int, now_s: float) -> None:
        if self.offline[block]:
            return
        self.offline[block] = True
        self.offline_since_s[block] = now_s
        cover = self.cover
        full = self.blocks_per_group
        for group in self._groups_of_block[block]:
            cover[group] += 1
            if cover[group] == full:
                self._full.add(group)

    def block_onlined(self, block: int, now_s: float) -> None:
        if not self.offline[block]:
            return
        self.offline[block] = False
        self.offline_total_s[block] += now_s - self.offline_since_s[block]
        self.offline_since_s[block] = np.nan
        cover = self.cover
        for group in self._groups_of_block[block]:
            cover[group] -= 1
            self._full.discard(group)

    # --- gate events ------------------------------------------------------

    def group_gated(self, group: int, now_s: float) -> None:
        self.gated[group] = True
        self._gated_set.add(group)
        self.gated_since_s[group] = now_s

    def group_ungated(self, group: int, now_s: float) -> None:
        if not self.gated[group]:
            return
        self.gated[group] = False
        self._gated_set.discard(group)
        self.gated_total_s[group] += now_s - self.gated_since_s[group]
        self.gated_since_s[group] = np.nan

    # --- eligibility ------------------------------------------------------

    def eligible_mask(self) -> np.ndarray:
        """Boolean mask of groups that may be gated right now.

        A group qualifies when every covering block is off-lined; with
        pair gating its partner group must qualify too.
        """
        full = self.cover == self.blocks_per_group
        if self.pair_gating:
            full &= full[self._pair]
        return full

    def eligible_groups(self) -> List[int]:
        """Gateable group indices, ascending (matches the sorted rescan)."""
        full = self._full
        if self.pair_gating:
            return sorted(g for g in full if g ^ 1 in full)
        return sorted(full)

    def gate_candidates(self) -> List[int]:
        """Eligible groups not currently gated, ascending.

        The gate path only probes the controller's ready bit for these,
        so already-gated groups cost nothing per offline event.
        """
        full = self._full
        gated = self._gated_set
        if self.pair_gating:
            return sorted(g for g in full
                          if g not in gated and g ^ 1 in full)
        return sorted(g for g in full if g not in gated)

    def broken_gated_groups(self) -> List[int]:
        """Gated groups whose eligibility no longer holds, ascending."""
        full = self._full
        if self.pair_gating:
            return sorted(g for g in self._gated_set
                          if g not in full or g ^ 1 not in full)
        return sorted(g for g in self._gated_set if g not in full)

    # --- checkpoint/restore -----------------------------------------------

    def state_dict(self) -> dict:
        """Coverage counters, gate flags, and residency clocks."""
        return {"cover": self.cover,
                "gated": self.gated,
                "offline": self.offline,
                "offline_since_s": self.offline_since_s,
                "offline_total_s": self.offline_total_s,
                "gated_since_s": self.gated_since_s,
                "gated_total_s": self.gated_total_s,
                "full": self._full,
                "gated_set": self._gated_set}

    def load_state_dict(self, state: dict) -> None:
        self.cover[:] = state["cover"]
        self.gated[:] = state["gated"]
        self.offline[:] = state["offline"]
        self.offline_since_s[:] = state["offline_since_s"]
        self.offline_total_s[:] = state["offline_total_s"]
        self.gated_since_s[:] = state["gated_since_s"]
        self.gated_total_s[:] = state["gated_total_s"]
        self._full = set(state["full"])
        self._gated_set = set(state["gated_set"])

    # --- residency views --------------------------------------------------

    def offline_residency_s(self, now_s: float) -> np.ndarray:
        """Cumulative seconds each block has spent off-lined, as of *now_s*."""
        total = self.offline_total_s.copy()
        live = self.offline
        total[live] += now_s - self.offline_since_s[live]
        return total

    def gated_residency_s(self, now_s: float) -> np.ndarray:
        """Cumulative seconds each group has spent gated, as of *now_s*."""
        total = self.gated_total_s.copy()
        live = self.gated
        total[live] += now_s - self.gated_since_s[live]
        return total


# --- batched epoch evaluation -------------------------------------------------
#
# The span planner (repro.sim.kernel) evaluates a run of constant-state
# epochs as one numpy operation per accumulator.  Bit-for-bit equivalence
# with per-epoch stepping is the contract, so every helper below applies
# its float additions strictly left to right (``np.add.accumulate`` in
# binary64 performs the identical op sequence as a scalar ``x += step``
# loop) — never ``np.sum``, which is free to re-associate.


def batched_times(start: float, step: float, n: int) -> Tuple[List[float], float]:
    """The ``now += step`` clock chain from *start*, batched.

    Returns ``(timestamps, final)``: the *n* epoch timestamps the scalar
    chain would visit (starting at *start* itself) and the value the
    clock holds after the last tick.
    """
    steps = np.empty(n + 1, dtype=np.float64)
    steps[0] = start
    steps[1:] = step
    times = np.add.accumulate(steps)
    return times[:n].tolist(), float(times[n])


def accumulate_energy(initial: float, step_j: float, n: int) -> float:
    """*n* sequential ``energy += step_j`` additions starting at *initial*."""
    acc = np.empty(n + 1, dtype=np.float64)
    acc[0] = initial
    acc[1:] = step_j
    return float(np.add.accumulate(acc)[-1])


def monitor_timer_after(since: float, step: float, period: float,
                        n: int) -> float:
    """The daemon monitor timer after *n* quiet epochs, batched.

    Replays ``since += step; if since >= period: since = 0.0`` exactly.
    The reset makes the sequence periodic, so two chains suffice: phase A
    runs from the carried-in value to its first reset; phase B is the
    steady cycle from 0.0 (``0.0 + step == step`` exactly, so the chain
    starts bit-equal), and the final value falls out of the remainder.
    """
    acc = np.empty(n + 1, dtype=np.float64)
    acc[0] = since
    acc[1:] = step
    phase_a = np.add.accumulate(acc)
    hits = np.nonzero(phase_a[1:] >= period)[0]
    if hits.size == 0:
        return float(phase_a[n])
    rest = n - (int(hits[0]) + 1)  # epochs after the first reset
    if rest == 0:
        return 0.0
    phase_b = np.add.accumulate(np.full(rest, step, dtype=np.float64))
    hits_b = np.nonzero(phase_b >= period)[0]
    if hits_b.size == 0:
        return float(phase_b[rest - 1])
    cycle = int(hits_b[0]) + 1
    part = rest % cycle
    return 0.0 if part == 0 else float(phase_b[part - 1])


def emit_replicated(out: List[object], times: Sequence[float],
                    template: object) -> None:
    """Append one copy of *template* per timestamp (bulk sample emission).

    *template* is any NamedTuple whose first field is the timestamp; the
    remaining fields are replicated unchanged.
    """
    make = type(template)._make
    tail = tuple(template)[1:]
    out += [make((t, *tail)) for t in times]
