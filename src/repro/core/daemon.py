"""The GreenDIMM power-management daemon (Section 4.2).

``memory_usage_monitor()`` samples meminfo every monitoring period (or
immediately after a KSM pass completes); when free memory exceeds the
``off_thr`` reserve it asks ``block_selector()`` for candidates and
off-lines them, gating newly covered sub-array groups; when free memory
drops below ``on_thr`` it wakes groups, polls the ready bit, and
on-lines blocks back.
"""

from __future__ import annotations

import collections
import math
import random
from dataclasses import dataclass
from typing import Deque, Optional

from repro.core.config import GreenDIMMConfig
from repro.core.power_control import GreenDIMMPowerControl
from repro.core.selector import BlockSelector
from repro.errors import ConfigurationError
from repro.ksm.daemon import KSMDaemon
from repro.os.hotplug import MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class DaemonEvent:
    """One daemon action, for time-series analysis (Figure 12 style)."""

    time_s: float
    kind: str  # offline | online | ebusy | eagain | emergency
    block: int


@dataclass
class DaemonStats:
    """Run counters: the raw material of Table 2/3 and Figures 6-8, 12."""

    offline_events: int = 0
    online_events: int = 0
    ebusy_failures: int = 0
    eagain_failures: int = 0
    offlined_bytes_total: int = 0
    onlined_bytes_total: int = 0
    busy_s: float = 0.0
    busy_offline_s: float = 0.0
    busy_online_s: float = 0.0
    wakeup_wait_s: float = 0.0
    emergency_onlines: int = 0

    @property
    def total_failures(self) -> int:
        return self.ebusy_failures + self.eagain_failures


class GreenDIMMDaemon:
    """Implements ``memory_usage_monitor()`` + ``block_selector()``."""

    def __init__(self, mm: PhysicalMemoryManager,
                 hotplug: MemoryBlockManager,
                 power_control: GreenDIMMPowerControl,
                 config: Optional[GreenDIMMConfig] = None,
                 ksm: Optional[KSMDaemon] = None,
                 rng: Optional[random.Random] = None):
        self.mm = mm
        self.hotplug = hotplug
        self.power_control = power_control
        self.config = config or GreenDIMMConfig()
        if self.config.block_bytes != mm.block_pages * PAGE_SIZE:
            raise ConfigurationError(
                "daemon block size differs from the memory manager's")
        self.ksm = ksm
        self.selector = BlockSelector(hotplug, self.config.selection,
                                      rng or random.Random(29))
        self.stats = DaemonStats()
        if self.config.on_thr_fraction >= self.config.off_thr_fraction:
            raise ConfigurationError(
                "on_thr must stay below off_thr for hysteresis")
        if self.low_water_pages >= self.reserve_pages:
            raise ConfigurationError(
                f"on_thr and off_thr collapse to the same page count "
                f"({self.low_water_pages} >= {self.reserve_pages}) on this "
                f"{self.mm.total_pages}-page platform; widen the hysteresis "
                f"band or use a larger capacity")
        #: Bounded event history; oldest entries are dropped.
        self.event_log: Deque[DaemonEvent] = collections.deque(maxlen=20_000)
        self._since_monitor_s = math.inf  # fire on the first step

    # --- thresholds ----------------------------------------------------------

    @property
    def _block_pages(self) -> int:
        return self.mm.block_pages

    @property
    def reserve_pages(self) -> int:
        """Free pages that must stay on-lined (off_thr x installed).

        Rounded to the nearest page (matching ``low_water_pages``) so
        the two thresholds cannot drift apart by a flooring artefact.
        """
        return round(self.config.off_thr_fraction * self.mm.total_pages)

    @property
    def low_water_pages(self) -> int:
        """Free-page level that triggers on-lining (on_thr x installed)."""
        return round(self.config.on_thr_fraction * self.mm.total_pages)

    # --- public stepping ---------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> None:
        """Advance the daemon by one simulation epoch."""
        self._since_monitor_s += dt_s
        ksm_kick = (self.config.react_to_ksm and self.ksm is not None
                    and self.ksm.pass_just_completed)
        if self._since_monitor_s < self.config.monitor_period_s and not ksm_kick:
            return
        self._since_monitor_s = 0.0
        self.monitor_once(now_s)

    def monitor_once(self, now_s: float = 0.0) -> None:
        """One ``memory_usage_monitor()`` evaluation."""
        free = self.mm.free_pages
        if free < self.low_water_pages:
            target = (self.reserve_pages + self.low_water_pages) // 2
            self._online_until(now_s, target_free_pages=target)
        elif free > self.reserve_pages + self._block_pages:
            self._offline_surplus(now_s, free)

    # --- off-lining --------------------------------------------------------------

    def _offline_surplus(self, now_s: float, free_pages: int) -> None:
        surplus_blocks = (free_pages - self.reserve_pages) // self._block_pages
        if surplus_blocks <= 0:
            return
        budget = min(surplus_blocks, self.config.max_attempts_per_period)
        candidates = self.selector.candidates(budget)
        done = 0
        for block in candidates:
            if done >= surplus_blocks:
                break
            result = self.hotplug.try_offline_block(block)
            self.stats.busy_s += result.latency_s
            self.stats.busy_offline_s += result.latency_s
            if result.success:
                done += 1
                self.stats.offline_events += 1
                self.stats.offlined_bytes_total += self.config.block_bytes
                self.power_control.block_offlined(block, now_s)
                self.event_log.append(DaemonEvent(now_s, "offline", block))
            elif result.errno_name == "EBUSY":
                self.stats.ebusy_failures += 1
                self.event_log.append(DaemonEvent(now_s, "ebusy", block))
            else:
                self.stats.eagain_failures += 1
                self.event_log.append(DaemonEvent(now_s, "eagain", block))

    # --- on-lining ----------------------------------------------------------------

    def _online_until(self, now_s: float, target_free_pages: int) -> int:
        onlined = 0
        while self.mm.free_pages < target_free_pages:
            offline = self.hotplug.offline_blocks()
            if not offline:
                break
            block = min(offline)
            # The wake-up poll (Section 4.3) is controller wait, not
            # daemon CPU time: it lands in wakeup_wait_s only, so
            # cpu_overhead_fraction reflects cycles actually consumed.
            wait_s = self.power_control.prepare_online(block, now_s)
            self.stats.wakeup_wait_s += wait_s
            latency = self.hotplug.online_block(block)
            self.power_control.block_onlined(block, now_s)
            self.stats.busy_s += latency
            self.stats.busy_online_s += latency
            self.stats.online_events += 1
            self.stats.onlined_bytes_total += self.config.block_bytes
            self.event_log.append(DaemonEvent(now_s, "online", block))
            onlined += 1
        return onlined

    def emergency_online(self, needed_pages: int, now_s: float = 0.0) -> int:
        """Allocation pressure beyond the monitor's reaction: on-line now.

        Returns the blocks on-lined.  Called by the server model when an
        allocation fails between monitoring periods.
        """
        target = self.mm.free_pages + max(needed_pages, self._block_pages)
        onlined = self._online_until(now_s, target_free_pages=target)
        if onlined:
            self.stats.emergency_onlines += 1
            self.event_log.append(DaemonEvent(now_s, "emergency", -1))
        return onlined

    # --- views --------------------------------------------------------------------

    @property
    def offline_block_count(self) -> int:
        return self.hotplug.offline_count

    def dpd_fraction(self) -> float:
        """Capacity fraction in deep power-down, for the power model."""
        return self.power_control.gated_capacity_fraction()

    def cpu_overhead_fraction(self, elapsed_s: float) -> float:
        """Fraction of one core the daemon consumed over *elapsed_s*."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.stats.busy_s / elapsed_s)
