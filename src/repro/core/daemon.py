"""The GreenDIMM power-management daemon (Section 4.2).

``memory_usage_monitor()`` samples meminfo every monitoring period (or
immediately after a KSM pass completes); when free memory exceeds the
``off_thr`` reserve it asks ``block_selector()`` for candidates and
off-lines them, gating newly covered sub-array groups; when free memory
drops below ``on_thr`` it wakes groups, polls the ready bit, and
on-lines blocks back.
"""

from __future__ import annotations

import collections
import math
import random
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set

from repro.core.config import GreenDIMMConfig
from repro.core.power_control import GreenDIMMPowerControl
from repro.core.selector import BlockSelector
from repro.errors import ConfigurationError, OnlineError, WakeupTimeoutError
from repro.ksm.daemon import KSMDaemon
from repro.obs.tracer import GLOBAL_TRACER as TRACER
from repro.os.hotplug import MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.units import PAGE_SIZE


@dataclass(frozen=True)
class DaemonEvent:
    """One daemon action, for time-series analysis (Figure 12 style)."""

    time_s: float
    kind: str  # offline | online | ebusy | eagain | emergency
    #          # | online_failed | wakeup_timeout | quarantine
    block: int


@dataclass
class DaemonStats:
    """Run counters: the raw material of Table 2/3 and Figures 6-8, 12."""

    offline_events: int = 0
    online_events: int = 0
    ebusy_failures: int = 0
    eagain_failures: int = 0
    offlined_bytes_total: int = 0
    onlined_bytes_total: int = 0
    busy_s: float = 0.0
    busy_offline_s: float = 0.0
    busy_online_s: float = 0.0
    wakeup_wait_s: float = 0.0
    emergency_onlines: int = 0
    online_failures: int = 0
    wakeup_timeouts: int = 0
    quarantines: int = 0

    @property
    def total_failures(self) -> int:
        return self.ebusy_failures + self.eagain_failures


class GreenDIMMDaemon:
    """Implements ``memory_usage_monitor()`` + ``block_selector()``."""

    def __init__(self, mm: PhysicalMemoryManager,
                 hotplug: MemoryBlockManager,
                 power_control: GreenDIMMPowerControl,
                 config: Optional[GreenDIMMConfig] = None,
                 ksm: Optional[KSMDaemon] = None,
                 rng: Optional[random.Random] = None):
        self.mm = mm
        self.hotplug = hotplug
        self.power_control = power_control
        self.config = config or GreenDIMMConfig()
        if self.config.block_bytes != mm.block_pages * PAGE_SIZE:
            raise ConfigurationError(
                "daemon block size differs from the memory manager's")
        self.ksm = ksm
        self.selector = BlockSelector(hotplug, self.config.selection,
                                      rng or random.Random(29))
        self.stats = DaemonStats()
        if self.config.on_thr_fraction >= self.config.off_thr_fraction:
            raise ConfigurationError(
                "on_thr must stay below off_thr for hysteresis")
        if self.low_water_pages >= self.reserve_pages:
            raise ConfigurationError(
                f"on_thr and off_thr collapse to the same page count "
                f"({self.low_water_pages} >= {self.reserve_pages}) on this "
                f"{self.mm.total_pages}-page platform; widen the hysteresis "
                f"band or use a larger capacity")
        #: Bounded event history; oldest entries are dropped.
        self.event_log: Deque[DaemonEvent] = collections.deque(maxlen=20_000)
        self._since_monitor_s = math.inf  # fire on the first step
        #: Consecutive off-lining failures per block (cleared on success).
        self._fail_streak: Dict[int, int] = {}
        #: Earliest time a failed block may be attempted again (backoff /
        #: quarantine embargo).
        self._retry_at: Dict[int, float] = {}

    def _record(self, event: DaemonEvent) -> None:
        """Log one decision: the bounded history plus the trace stream."""
        self.event_log.append(event)
        if TRACER.enabled:
            TRACER.event("daemon." + event.kind, t_s=event.time_s,
                         block=event.block)

    # --- thresholds ----------------------------------------------------------

    @property
    def _block_pages(self) -> int:
        return self.mm.block_pages

    @property
    def reserve_pages(self) -> int:
        """Free pages that must stay on-lined (off_thr x installed).

        Rounded to the nearest page (matching ``low_water_pages``) so
        the two thresholds cannot drift apart by a flooring artefact.
        """
        return round(self.config.off_thr_fraction * self.mm.total_pages)

    @property
    def low_water_pages(self) -> int:
        """Free-page level that triggers on-lining (on_thr x installed)."""
        return round(self.config.on_thr_fraction * self.mm.total_pages)

    # --- public stepping ---------------------------------------------------

    def step(self, now_s: float, dt_s: float) -> None:
        """Advance the daemon by one simulation epoch."""
        self._since_monitor_s += dt_s
        ksm_kick = (self.config.react_to_ksm and self.ksm is not None
                    and self.ksm.pass_just_completed)
        if self._since_monitor_s < self.config.monitor_period_s and not ksm_kick:
            return
        self._since_monitor_s = 0.0
        self.monitor_once(now_s)

    def tick_quiescent(self, dt_s: float) -> None:
        """Advance the monitor timer through an epoch known to be a no-op.

        A bit-exact mirror of :meth:`step`'s timer arithmetic for epochs
        where ``monitor_once`` would read free memory inside the
        hysteresis band and do nothing; the fast-forward layer calls this
        instead of :meth:`step` so a later slow epoch fires the monitor
        at exactly the same simulated time either way.
        """
        self._since_monitor_s += dt_s
        if self._since_monitor_s < self.config.monitor_period_s:
            return
        self._since_monitor_s = 0.0

    def monitor_is_noop(self) -> bool:
        """True when a monitor pass right now would take no action.

        The exact complement of :meth:`monitor_once`'s two branches:
        free memory sits inside ``[on_thr, off_thr + one block]``, so the
        pass would neither on-line nor off-line anything (and would
        consume no selector/hot-plug randomness).
        """
        free = self.mm.free_pages
        return (self.low_water_pages <= free
                <= self.reserve_pages + self._block_pages)

    def monitor_once(self, now_s: float = 0.0) -> None:
        """One ``memory_usage_monitor()`` evaluation."""
        free = self.mm.free_pages
        if free < self.low_water_pages:
            target = (self.reserve_pages + self.low_water_pages) // 2
            self._online_until(now_s, target_free_pages=target)
        elif free > self.reserve_pages + self._block_pages:
            self._offline_surplus(now_s, free)

    # --- off-lining --------------------------------------------------------------

    def _embargoed(self, now_s: float) -> Set[int]:
        """Blocks sitting out a backoff delay or quarantine cooldown."""
        expired = [b for b, t in self._retry_at.items() if t <= now_s]
        for block in expired:
            del self._retry_at[block]
        return set(self._retry_at)

    def _note_offline_failure(self, block: int, now_s: float,
                              errno_name: Optional[str]) -> None:
        """Bounded retry with exponential backoff, then quarantine.

        EAGAIN is transient, so the block is retried after an
        exponentially growing delay; EBUSY means unmovable pages are
        present right now, so one base delay gives the pinned extent a
        chance to expire.  A block that keeps failing either way is
        quarantined for a long cooldown instead of burning an attempt
        every period forever.
        """
        streak = self._fail_streak.get(block, 0) + 1
        self._fail_streak[block] = streak
        if streak >= self.config.quarantine_failures:
            self._retry_at[block] = now_s + self.config.quarantine_cooldown_s
            self.stats.quarantines += 1
            self._record(DaemonEvent(now_s, "quarantine", block))
            return
        if errno_name == "EAGAIN":
            delay = min(self.config.retry_backoff_base_s * 2 ** (streak - 1),
                        self.config.retry_backoff_max_s)
        else:
            delay = self.config.retry_backoff_base_s
        self._retry_at[block] = now_s + delay

    def _offline_surplus(self, now_s: float, free_pages: int) -> None:
        surplus_blocks = (free_pages - self.reserve_pages) // self._block_pages
        if surplus_blocks <= 0:
            return
        # Draw up to max_attempts_per_period candidates so each failure
        # has a replacement to fall through to: the budget bounds
        # *attempts*, not candidates, and off-lining no longer falls
        # short of the surplus just because early candidates failed.
        max_attempts = self.config.max_attempts_per_period
        candidates = self.selector.candidates(
            max_attempts, exclude=self._embargoed(now_s))
        done = 0
        attempts = 0
        for block in candidates:
            if done >= surplus_blocks or attempts >= max_attempts:
                break
            attempts += 1
            result = self.hotplug.try_offline_block(block)
            self.stats.busy_s += result.latency_s
            self.stats.busy_offline_s += result.latency_s
            if result.success:
                done += 1
                self._fail_streak.pop(block, None)
                self.stats.offline_events += 1
                self.stats.offlined_bytes_total += self.config.block_bytes
                self.power_control.block_offlined(block, now_s)
                self._record(DaemonEvent(now_s, "offline", block))
            elif result.errno_name == "EBUSY":
                self.stats.ebusy_failures += 1
                self._record(DaemonEvent(now_s, "ebusy", block))
                self._note_offline_failure(block, now_s, result.errno_name)
            else:
                self.stats.eagain_failures += 1
                self._record(DaemonEvent(now_s, "eagain", block))
                self._note_offline_failure(block, now_s, result.errno_name)

    # --- on-lining ----------------------------------------------------------------

    def _online_until(self, now_s: float,
                      target_free_pages: int) -> List[int]:
        """On-line lowest-address offline blocks until *target* free pages.

        Degrades gracefully: a block whose wake-up times out or whose
        ``online_pages()`` fails is skipped and the next-lowest offline
        block is tried instead of aborting the refill (or spinning on
        the same block forever).  Every iteration either on-lines a
        block or adds one to the skip set, so the loop is bounded by the
        offline-block count.  Returns the blocks brought back.
        """
        onlined: List[int] = []
        # Track free pages incrementally: each successful online adds
        # exactly one block of frames, and nothing else in this loop
        # changes the free total.
        free_pages = self.mm.free_pages
        if free_pages >= target_free_pages:
            return onlined
        # The offline set only shrinks while this loop runs (each pass
        # removes the block it on-lines, or skips it for good), so one
        # sorted snapshot yields the same lowest-first attempt order as
        # re-computing the minimum every iteration.
        for block in sorted(self.hotplug.offline_set()):
            if free_pages >= target_free_pages:
                break
            # The wake-up poll (Section 4.3) is controller wait, not
            # daemon CPU time: it lands in wakeup_wait_s only, so
            # cpu_overhead_fraction reflects cycles actually consumed.
            try:
                wait_s = self.power_control.prepare_online(block, now_s)
            except WakeupTimeoutError as err:
                self.stats.wakeup_wait_s += getattr(err, "wait_s", 0.0)
                self.stats.wakeup_timeouts += 1
                self._record(DaemonEvent(now_s, "wakeup_timeout", block))
                continue
            self.stats.wakeup_wait_s += wait_s
            try:
                latency = self.hotplug.online_block(block)
            except OnlineError as err:
                self.stats.online_failures += 1
                self.stats.busy_s += getattr(err, "latency_s", 0.0)
                self.stats.busy_online_s += getattr(err, "latency_s", 0.0)
                self._record(DaemonEvent(now_s, "online_failed", block))
                continue
            self.power_control.block_onlined(block, now_s)
            self.stats.busy_s += latency
            self.stats.busy_online_s += latency
            self.stats.online_events += 1
            self.stats.onlined_bytes_total += self.config.block_bytes
            self._record(DaemonEvent(now_s, "online", block))
            onlined.append(block)
            free_pages += self._block_pages
        return onlined

    def emergency_online(self, needed_pages: int, now_s: float = 0.0) -> int:
        """Allocation pressure beyond the monitor's reaction: on-line now.

        Returns the number of blocks on-lined.  Called by the server
        model when an allocation fails between monitoring periods.  One
        ``emergency`` event is logged per block brought back, so
        Figure-12-style event analysis counts emergency traffic at its
        true rate.
        """
        target = self.mm.free_pages + max(needed_pages, self._block_pages)
        onlined = self._online_until(now_s, target_free_pages=target)
        if onlined:
            self.stats.emergency_onlines += 1
            for block in onlined:
                self._record(DaemonEvent(now_s, "emergency", block))
        return len(onlined)

    # --- checkpoint/restore ---------------------------------------------------------

    def state_dict(self) -> dict:
        """Everything that moves at runtime: counters, the bounded event
        history, the monitor timer, the backoff/quarantine embargoes, the
        selector's stale view + RNG, and the (retunable) config."""
        return {"config": self.config,
                "stats": self.stats,
                "event_log": self.event_log,
                "since_monitor_s": self._since_monitor_s,
                "fail_streak": self._fail_streak,
                "retry_at": self._retry_at,
                "selector": self.selector.state_dict()}

    def load_state_dict(self, state: dict) -> None:
        self.config = state["config"]
        self.stats = state["stats"]
        self.event_log = state["event_log"]
        self._since_monitor_s = state["since_monitor_s"]
        self._fail_streak = state["fail_streak"]
        self._retry_at = state["retry_at"]
        self.selector.load_state_dict(state["selector"])

    # --- views --------------------------------------------------------------------

    @property
    def offline_block_count(self) -> int:
        return self.hotplug.offline_count

    def dpd_fraction(self) -> float:
        """Capacity fraction in deep power-down, for the power model."""
        return self.power_control.gated_capacity_fraction()

    def cpu_overhead_fraction(self, elapsed_s: float) -> float:
        """Fraction of one core the daemon consumed over *elapsed_s*."""
        if elapsed_s <= 0:
            return 0.0
        return min(1.0, self.stats.busy_s / elapsed_s)
