"""GreenDIMM — the paper's contribution.

Ties the substrates together: the daemon monitors memory utilization and
drives OS memory on/off-lining (Section 4.2); the block map ties each
physical memory block to its sub-array groups (Section 4.1); the power
control gates off-lined groups into the sub-array deep power-down state
through the controller register and un-gates them — polling the ready
bit — before blocks are on-lined (Section 4.3).
"""

from repro.core.config import GreenDIMMConfig, SelectionPolicy
from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.core.selector import BlockSelector
from repro.core.daemon import GreenDIMMDaemon, DaemonStats
from repro.core.system import GreenDIMMSystem

__all__ = [
    "GreenDIMMConfig",
    "SelectionPolicy",
    "PowerBlockMap",
    "GreenDIMMPowerControl",
    "BlockSelector",
    "GreenDIMMDaemon",
    "DaemonStats",
    "GreenDIMMSystem",
]
