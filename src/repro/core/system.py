"""Facade wiring a whole GreenDIMM-managed server together.

Examples and benchmarks build one :class:`GreenDIMMSystem` instead of
assembling the memory manager, hot-plug manager, block map, control
register, KSM, and daemon by hand.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.core.config import GreenDIMMConfig
from repro.core.daemon import GreenDIMMDaemon
from repro.core.mapping import PowerBlockMap
from repro.core.power_control import GreenDIMMPowerControl
from repro.dram.address import AddressMapping
from repro.dram.organization import MemoryOrganization, spec_server_memory
from repro.faults.context import get_active_plan, register_injector
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.wrappers import wrap_system_components
from repro.ksm.daemon import KSMConfig, KSMDaemon
from repro.os.hotplug import HotplugLatencyModel, MemoryBlockManager
from repro.os.mm import PhysicalMemoryManager
from repro.os.page import OwnerKind
from repro.os.sysfs import SysfsMemoryInterface
from repro.policies.context import get_active_policy
from repro.policies.registry import DEFAULT_POLICY, create_policy
from repro.power.model import DRAMPowerBreakdown, DRAMPowerModel
from repro.units import GIB


class GreenDIMMSystem:
    """One server: topology + OS substrate + GreenDIMM + power model."""

    def __init__(self, organization: Optional[MemoryOrganization] = None,
                 config: Optional[GreenDIMMConfig] = None,
                 movable_fraction: float = 0.85,
                 enable_ksm: bool = False,
                 ksm_config: Optional[KSMConfig] = None,
                 hotplug_latency: Optional[HotplugLatencyModel] = None,
                 transient_failure_probability: float = 0.85,
                 kernel_boot_bytes: int = 2 * GIB,
                 fault_plan: Optional[FaultPlan] = None,
                 policy: Optional[str] = None,
                 seed: int = 42):
        self.organization = organization or spec_server_memory()
        self.config = config or GreenDIMMConfig()
        rng = random.Random(seed)
        # Fault injection: an explicit plan wins; otherwise the runner's
        # process-global plan (``repro run --fault-plan``) applies.  The
        # wrappers are identity when no plan is active.
        from_context = fault_plan is None
        # `is None`, not truthiness: an explicit empty plan (zero rules,
        # so falsy via __len__) must still beat the ambient context plan.
        self.fault_plan = (fault_plan if fault_plan is not None
                           else get_active_plan())
        self.fault_injector = (FaultInjector(self.fault_plan)
                               if self.fault_plan is not None else None)
        if self.fault_injector is not None and from_context:
            register_injector(self.fault_injector)
        core_mm = PhysicalMemoryManager(
            total_bytes=self.organization.total_capacity_bytes,
            block_bytes=self.config.block_bytes,
            movable_fraction=movable_fraction)
        core_hotplug = MemoryBlockManager(
            core_mm, latency=hotplug_latency,
            transient_failure_probability=transient_failure_probability,
            rng=random.Random(rng.randrange(1 << 30)))
        self.mapping = AddressMapping(self.organization, interleaved=True)
        self.block_map = PowerBlockMap(self.mapping, self.config.block_bytes)
        core_power_control = GreenDIMMPowerControl(
            self.block_map, pair_gating=self.config.pair_gating)
        self.mm, self.hotplug, self.power_control = wrap_system_components(
            core_mm, core_hotplug, core_power_control, self.fault_injector)
        self.sysfs = SysfsMemoryInterface(core_hotplug)
        # KSM runs against the unwrapped manager: its merge/unmerge
        # bookkeeping must not be starved by injected pressure spikes.
        self.ksm = (KSMDaemon(core_mm, config=ksm_config,
                              rng=random.Random(rng.randrange(1 << 30)))
                    if enable_ksm else None)
        self.daemon = GreenDIMMDaemon(
            self.mm, self.hotplug, self.power_control, self.config,
            ksm=self.ksm, rng=random.Random(rng.randrange(1 << 30)))
        self.power_model = DRAMPowerModel(self.organization)
        if kernel_boot_bytes:
            core_mm.allocate("kernel", kernel_boot_bytes // 4096,
                             kind=OwnerKind.KERNEL)
        # Policy selection: an explicit name wins; otherwise the runner's
        # process-global selection (``repro run --policy``) applies, and
        # the GreenDIMM daemon remains the default.  The daemon itself is
        # always constructed (above, preserving the RNG draw order) so
        # direct ``system.daemon`` consumers keep working under any
        # policy; only the kernel's stepping goes through ``self.policy``.
        self.policy_name = (policy if policy is not None
                            else get_active_policy() or DEFAULT_POLICY)
        self.policy = create_policy(self.policy_name, self)

    # --- runtime reconfiguration -------------------------------------------

    def install_fault_plan(self, plan: FaultPlan, now_s: float = 0.0) -> None:
        """Arm (or replace) a fault plan on a *live* system.

        Rebuilds the fault wrappers around the unwrapped core components
        and re-points every consumer that captured the old surfaces at
        construction time (the daemon and its block selector).  KSM and
        sysfs deliberately keep talking to the unwrapped core, exactly as
        in ``__init__``.
        """
        core_mm = getattr(self.mm, "inner", self.mm)
        core_hotplug = getattr(self.hotplug, "inner", self.hotplug)
        core_power_control = getattr(self.power_control, "inner",
                                     self.power_control)
        self.fault_plan = plan
        self.fault_injector = FaultInjector(plan)
        self.fault_injector.advance(now_s)
        self.mm, self.hotplug, self.power_control = wrap_system_components(
            core_mm, core_hotplug, core_power_control, self.fault_injector)
        self.daemon.mm = self.mm
        self.daemon.hotplug = self.hotplug
        self.daemon.power_control = self.power_control
        self.daemon.selector.hotplug = self.hotplug

    def retune(self, **overrides) -> GreenDIMMConfig:
        """Replace config fields (e.g. daemon thresholds) without restart.

        ``dataclasses.replace`` re-runs the config's own validation; the
        daemon's hysteresis invariants are re-checked here the same way
        its constructor checks them.  Returns the new config.
        """
        from repro.errors import ConfigurationError
        config = dataclasses.replace(self.config, **overrides)
        if config.on_thr_fraction >= config.off_thr_fraction:
            raise ConfigurationError(
                "on_thr must stay below off_thr for hysteresis")
        core_mm = getattr(self.mm, "inner", self.mm)
        if (round(config.on_thr_fraction * core_mm.total_pages)
                >= round(config.off_thr_fraction * core_mm.total_pages)):
            raise ConfigurationError(
                "on_thr and off_thr collapse to the same page count")
        self.config = config
        self.daemon.config = config
        return config

    # --- checkpoint/restore --------------------------------------------------

    def state_dict(self) -> dict:
        """The whole server-side state tree (live references — the caller
        pickles immediately; see :mod:`repro.sim.snapshot`)."""
        core_mm = getattr(self.mm, "inner", self.mm)
        core_hotplug = getattr(self.hotplug, "inner", self.hotplug)
        core_power_control = getattr(self.power_control, "inner",
                                     self.power_control)
        return {
            "config": self.config,
            "mm": core_mm.state_dict(),
            "hotplug": core_hotplug.state_dict(),
            "power_control": core_power_control.state_dict(),
            "daemon": self.daemon.state_dict(),
            "policy": self.policy.state_dict(),
            "ksm": self.ksm.state_dict() if self.ksm is not None else None,
            "fault_plan": self.fault_plan,
            "fault_injector": (self.fault_injector.state_dict()
                               if self.fault_injector is not None else None),
            "power_model": self.power_model.state_dict(),
        }

    def load_state_dict(self, state: dict) -> None:
        """Adopt a captured state tree onto this (freshly built) system.

        Component objects keep their identity — only their internal state
        is replaced — so all cross-wiring (daemon -> selector, sysfs ->
        hot-plug, policy -> system) survives.  A snapshot taken after a
        runtime :meth:`install_fault_plan` re-arms the plan here.
        """
        self.config = state["config"]
        core_mm = getattr(self.mm, "inner", self.mm)
        core_hotplug = getattr(self.hotplug, "inner", self.hotplug)
        core_power_control = getattr(self.power_control, "inner",
                                     self.power_control)
        core_mm.load_state_dict(state["mm"])
        core_hotplug.load_state_dict(state["hotplug"])
        core_power_control.load_state_dict(state["power_control"])
        if state["fault_injector"] is not None:
            if (self.fault_injector is None
                    or self.fault_plan is not state["fault_plan"]):
                self.install_fault_plan(state["fault_plan"])
            self.fault_injector.load_state_dict(state["fault_injector"])
        self.daemon.load_state_dict(state["daemon"])
        self.policy.load_state_dict(state["policy"])
        if self.ksm is not None and state["ksm"] is not None:
            self.ksm.load_state_dict(state["ksm"])
        self.power_model.load_state_dict(state["power_model"])

    # --- stepping ----------------------------------------------------------

    def advance_time(self, now_s: float) -> None:
        """Carry simulation time to the fault injector (no-op without one)."""
        if self.fault_injector is not None:
            self.fault_injector.advance(now_s)

    def step(self, now_s: float, dt_s: float = 1.0) -> None:
        """Advance KSM and the active power policy by one epoch."""
        self.advance_time(now_s)
        if self.ksm is not None:
            self.ksm.step(dt_s)
        self.policy.step(now_s, dt_s)

    # --- power views ----------------------------------------------------------

    def dram_power(self, bandwidth_bytes_per_s: float = 0.0,
                   active_residency: float = 0.0,
                   row_miss_rate: float = 0.5) -> DRAMPowerBreakdown:
        """Current DRAM power, honouring the gated sub-array groups.

        Memoized: the policy's whole power-relevant state projects onto
        ``dpd_fraction``, so (bandwidth, residency, row-miss, dpd) keys
        the evaluation exactly.
        """
        return self.power_model.busy_power_cached(
            bandwidth_bytes_per_s,
            active_residency=active_residency,
            row_miss_rate=row_miss_rate,
            dpd_fraction=self.policy.dpd_fraction())

    def baseline_dram_power(self, bandwidth_bytes_per_s: float = 0.0,
                            active_residency: float = 0.0,
                            row_miss_rate: float = 0.5) -> DRAMPowerBreakdown:
        """The same operating point with no sub-array gating."""
        return self.power_model.busy_power_cached(
            bandwidth_bytes_per_s,
            active_residency=active_residency,
            row_miss_rate=row_miss_rate,
            dpd_fraction=0.0)

    @property
    def power_cache_stats(self):
        """Hit/miss counters of the memoized power-model evaluations."""
        return self.power_model.cache_stats
