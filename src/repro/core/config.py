"""GreenDIMM daemon configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import DEFAULT_MEMORY_BLOCK_SIZE


class SelectionPolicy(enum.Enum):
    """How ``block_selector()`` picks off-lining candidates (Section 5.2)."""

    #: Pick any online block at random — the baseline of Figure 8, which
    #: suffers EBUSY (unmovable pages) and EAGAIN (failed migration).
    RANDOM = "random"
    #: Prefer blocks whose sysfs ``removable`` flag is set, free blocks
    #: first — the paper's optimization, cutting failures roughly in half.
    REMOVABLE_FIRST = "removable_first"


@dataclass(frozen=True)
class GreenDIMMConfig:
    """Thresholds and knobs of the power-management daemon (Section 4.2).

    ``off_thr_fraction`` is the free-memory reserve (fraction of installed
    capacity) that must remain on-lined: the paper uses 10% + a margin and
    observes thrashing below 10%.  ``on_thr_fraction`` is the low-water
    mark that triggers on-lining.  ``monitor_period_s`` is how often
    ``memory_usage_monitor()`` samples ``/proc/meminfo`` (1 s; faster
    periods only add overhead).
    """

    off_thr_fraction: float = 0.12
    on_thr_fraction: float = 0.105
    monitor_period_s: float = 1.0
    block_bytes: int = DEFAULT_MEMORY_BLOCK_SIZE
    selection: SelectionPolicy = SelectionPolicy.REMOVABLE_FIRST
    #: React to a completed KSM pass immediately (Section 5.3).
    react_to_ksm: bool = True
    #: Maximum off-lining attempts per monitoring period (bounds the time
    #: the daemon can spend fighting failures in one period).
    max_attempts_per_period: int = 64
    #: Gate a sub-array group only when its sense-amp partner group is
    #: also offline (Section 6.1's consecutive-sub-array assumption).
    pair_gating: bool = True
    #: First retry delay after a failed off-lining of a block; doubles per
    #: consecutive failure (bounded retry with exponential backoff).
    retry_backoff_base_s: float = 2.0
    #: Ceiling on the per-block exponential backoff.
    retry_backoff_max_s: float = 60.0
    #: Consecutive failures before a block is quarantined: skipped for a
    #: cooldown instead of retried forever.
    quarantine_failures: int = 3
    #: How long a quarantined block stays out of the candidate pool.
    quarantine_cooldown_s: float = 120.0

    def __post_init__(self) -> None:
        if not 0.0 < self.on_thr_fraction < self.off_thr_fraction < 1.0:
            raise ConfigurationError(
                "need 0 < on_thr < off_thr < 1 for hysteresis")
        if self.monitor_period_s <= 0:
            raise ConfigurationError("monitor period must be positive")
        if self.block_bytes <= 0:
            raise ConfigurationError("block size must be positive")
        if self.max_attempts_per_period <= 0:
            raise ConfigurationError("max attempts must be positive")
        if self.retry_backoff_base_s <= 0 or self.retry_backoff_max_s <= 0:
            raise ConfigurationError("backoff delays must be positive")
        if self.retry_backoff_max_s < self.retry_backoff_base_s:
            raise ConfigurationError(
                "backoff ceiling cannot undercut the base delay")
        if self.quarantine_failures <= 0:
            raise ConfigurationError("quarantine threshold must be positive")
        if self.quarantine_cooldown_s <= 0:
            raise ConfigurationError("quarantine cooldown must be positive")
