"""Memory-block <-> sub-array-group mapping (Section 4.1).

With interleaving, the top physical-address bits select the sub-array
group, so each contiguous memory block maps onto whole groups (when the
block is at least one group) or onto a slice of one group (when the
Linux block size is configured below the group capacity, as in the
Section 5.1 block-size study).  Either way the map answers the two
questions GreenDIMM asks:

* which groups does block *b* touch?
* is group *g* fully covered by off-lined blocks (and therefore safe to
  gate, since no physical address mapping to it remains on-line)?
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.dram.address import AddressMapping
from repro.errors import AddressError, ConfigurationError


class PowerBlockMap:
    """Relates OS memory blocks to gateable sub-array groups."""

    def __init__(self, mapping: AddressMapping, block_bytes: int):
        if not mapping.group_is_contiguous():
            raise ConfigurationError(
                "GreenDIMM requires the interleaved mapping: sub-array "
                "groups must be contiguous in physical address space")
        capacity = mapping.capacity_bytes
        if capacity % block_bytes:
            raise ConfigurationError("block size must divide capacity")
        group_bytes = mapping.subarray_group_bytes
        if block_bytes % group_bytes and group_bytes % block_bytes:
            raise ConfigurationError(
                "block size must be a multiple or divisor of the group size")
        self.mapping = mapping
        self.block_bytes = block_bytes
        self.group_bytes = group_bytes
        self.num_blocks = capacity // block_bytes
        self.num_groups = mapping.subarray_group_count
        if block_bytes >= group_bytes:
            self.groups_per_block = block_bytes // group_bytes
            self.blocks_per_group = 1
        else:
            self.groups_per_block = 1
            self.blocks_per_group = group_bytes // block_bytes
        # The topology is static, so both directions of the map are
        # precomputed once; per-event queries (every offline/online used
        # to re-derive group ranges through the address-mapping property
        # chain) become table lookups.
        # Contiguity was validated above, so both tables reduce to range
        # arithmetic (identical to mapping.groups_of_range /
        # group_address_range, without the per-call property chains).
        self._block_groups: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(b * block_bytes // group_bytes,
                        ((b + 1) * block_bytes - 1) // group_bytes + 1))
            for b in range(self.num_blocks))
        self._group_blocks: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(range(g * group_bytes // block_bytes,
                        ((g + 1) * group_bytes - 1) // block_bytes + 1))
            for g in range(self.num_groups))

    # --- forward map ------------------------------------------------------

    def groups_of_block(self, block: int) -> Tuple[int, ...]:
        """Sub-array groups that block *block* overlaps."""
        if not 0 <= block < self.num_blocks:
            raise AddressError(f"block {block} out of range")
        return self._block_groups[block]

    def blocks_of_group(self, group: int) -> Tuple[int, ...]:
        """Memory blocks that together cover group *group*."""
        if not 0 <= group < self.num_groups:
            raise AddressError(f"group {group} out of range")
        return self._group_blocks[group]

    # --- gating eligibility -----------------------------------------------

    def fully_offline_groups(self, offline_blocks: Set[int]) -> List[int]:
        """Groups every one of whose covering blocks is off-lined.

        Only these may be gated: a partially-covered group still backs
        on-lined physical addresses that can receive requests.
        """
        result = []
        for group in range(self.num_groups):
            if all(b in offline_blocks for b in self.blocks_of_group(group)):
                result.append(group)
        return result

    def gateable_groups(self, offline_blocks: Set[int],
                        pair_constraint: bool = True) -> List[int]:
        """Fully-offline groups, optionally restricted to sense-amp pairs.

        With *pair_constraint* (Section 6.1), adjacent groups share sense
        amplifiers, so a group may be gated only when its partner
        (``group ^ 1``) is also fully off-lined.
        """
        offline_groups = set(self.fully_offline_groups(offline_blocks))
        if not pair_constraint:
            return sorted(offline_groups)
        return sorted(g for g in offline_groups if (g ^ 1) in offline_groups)

    def describe(self) -> str:
        return (f"{self.num_blocks} blocks x {self.block_bytes} B <-> "
                f"{self.num_groups} groups x {self.group_bytes} B "
                f"({self.groups_per_block} groups/block, "
                f"{self.blocks_per_group} blocks/group)")
