"""``block_selector()`` — choosing which blocks to off-line (Section 5.2)."""

from __future__ import annotations

import random
from typing import Collection, List, Optional

from repro.core.config import SelectionPolicy
from repro.os.hotplug import MemoryBlockManager, MemoryBlockState
from repro.os.zones import ZoneKind


class BlockSelector:
    """Orders off-lining candidates according to the configured policy.

    Both policies draw from the movable zone (the daemon never touches
    kernel-zone blocks).  ``REMOVABLE_FIRST`` additionally checks the
    sysfs ``removable`` flag and prefers *fully free* blocks — the
    paper's optimization that halves off-lining failures (Figure 8) and
    avoids page migration entirely on the success path.  Candidates are
    returned highest-address-first so the off-lined region clusters at
    the top of memory, completing whole sub-array groups (and their
    sense-amp pairs) as quickly as possible.
    """

    def __init__(self, hotplug: MemoryBlockManager,
                 policy: SelectionPolicy = SelectionPolicy.REMOVABLE_FIRST,
                 rng: Optional[random.Random] = None,
                 stale_view: bool = True):
        self.hotplug = hotplug
        self.policy = policy
        self.rng = rng or random.Random(13)
        # The real daemon reads sysfs, then off-lines: the flags it acted
        # on can be stale by the time offline_pages() runs, which is why
        # removable-first still fails sometimes (Figure 8).  We model the
        # race by selecting from the previous monitoring pass's snapshot.
        self.stale_view = stale_view
        self._snapshot: Optional[dict] = None
        # Zones are static and block-aligned, so the movable block range
        # is a fixed [start, end) interval computed once.
        mm = hotplug.mm
        self._movable_range = range(0, 0)
        for zone in mm.zones:
            if zone.kind is ZoneKind.MOVABLE:
                self._movable_range = range(
                    zone.start_pfn // mm.block_pages,
                    zone.end_pfn // mm.block_pages)
                break

    def _movable_online_blocks(self) -> List[int]:
        states = self.hotplug.states
        online = MemoryBlockState.ONLINE
        return [b for b in self._movable_range if states[b] is online]

    def _observe(self) -> dict:
        """One sysfs reading pass over the movable online blocks.

        The free/removable flags come from the memory manager's SoA
        mirror: two vectorized compares instead of per-block accounting
        reads.
        """
        pool = self._movable_online_blocks()
        soa = self.hotplug.mm.soa_view()
        free_mask = soa.free_mask
        removable_mask = soa.removable_mask
        return {
            "pool": pool,
            "free": {b for b in pool if free_mask[b]},
            "removable": {b for b in pool if removable_mask[b]},
        }

    # --- checkpoint/restore --------------------------------------------------

    def state_dict(self) -> dict:
        """The stale sysfs snapshot plus the RANDOM-policy shuffle RNG."""
        return {"rng": self.rng.getstate(), "snapshot": self._snapshot}

    def load_state_dict(self, state: dict) -> None:
        self.rng.setstate(state["rng"])
        self._snapshot = state["snapshot"]

    def candidates(self, count: int,
                   exclude: Collection[int] = ()) -> List[int]:
        """Up to *count* blocks to attempt off-lining, in attempt order.

        *exclude* removes blocks the daemon has embargoed — backing off
        after repeated failures or sitting out a quarantine cooldown —
        before policy ordering is applied.
        """
        if count <= 0:
            return []
        current = self._observe()
        view = self._snapshot if (self.stale_view
                                  and self._snapshot is not None) else current
        self._snapshot = current
        excluded = set(exclude)
        states = self.hotplug.states
        online = MemoryBlockState.ONLINE
        pool = [b for b in view["pool"]
                if b not in excluded and states[b] is online]
        if not pool:
            return []
        if self.policy is SelectionPolicy.RANDOM:
            self.rng.shuffle(pool)
            return pool[:count]
        # removable-first: free blocks, then removable ones, both from the
        # top of memory downward; never propose blocks known unmovable.
        free = sorted((b for b in pool if b in view["free"]), reverse=True)
        removable_used = sorted((b for b in pool
                                 if b not in view["free"]
                                 and b in view["removable"]), reverse=True)
        return (free + removable_used)[:count]
