"""Deep power-down orchestration (Section 4.3).

After a successful off-lining the daemon updates the controller's
sub-array-group register; any group that is now fully covered by
off-lined blocks (and satisfies the sense-amp pairing constraint) enters
deep power-down.  Before on-lining a block the daemon un-gates the
affected groups and polls the ready bit; the exit latency is bounded by
the 18 ns power-down exit and — because it happens before
``online_pages()`` returns the block to the allocator — never sits on
any demand access's critical path.
"""

from __future__ import annotations

from typing import List, Optional, Set

from repro.core.mapping import PowerBlockMap
from repro.memctrl.moderegister import ModeRegisterFile
from repro.obs.tracer import GLOBAL_TRACER as TRACER
from repro.memctrl.registers import GreenDIMMControlRegister
from repro.soa import GroupGateStore


class GreenDIMMPowerControl:
    """Keeps the gating register consistent with the offline block set.

    Gate eligibility is tracked incrementally in a
    :class:`~repro.soa.GroupGateStore`: each offline/online event bumps
    the coverage count of the groups the block overlaps, and the
    fully-offline / pair-satisfied check is a vectorized compare —
    replacing the per-event rescan that re-derived every group's block
    range through the address-mapping layer.  The produced group lists
    are identical (ascending order, same membership) to the reference
    :meth:`~repro.core.mapping.PowerBlockMap.gateable_groups` rescan.
    """

    def __init__(self, block_map: PowerBlockMap,
                 register: Optional[GreenDIMMControlRegister] = None,
                 pair_gating: bool = True,
                 mode_registers: Optional[ModeRegisterFile] = None):
        self.block_map = block_map
        self.register = register or GreenDIMMControlRegister(
            num_groups=block_map.num_groups)
        self.pair_gating = pair_gating
        self.mode_registers = mode_registers or ModeRegisterFile(
            total_ranks=block_map.mapping.organization.total_ranks,
            mask_bits=max(64, block_map.num_groups))
        self._offline_blocks: Set[int] = set()
        self.soa = GroupGateStore(
            num_blocks=block_map.num_blocks,
            num_groups=block_map.num_groups,
            blocks_per_group=block_map.blocks_per_group,
            groups_of_block=[block_map.groups_of_block(b)
                             for b in range(block_map.num_blocks)],
            pair_gating=pair_gating)
        self.wakeup_wait_s = 0.0
        self.mrs_time_ns = 0.0

    def _sync_mode_registers(self) -> None:
        """Propagate the control register to every rank's MRs (MRS path)."""
        self.mrs_time_ns += self.mode_registers.broadcast_gate_mask(
            self.register.raw_value())

    # --- events from the daemon ------------------------------------------

    def block_offlined(self, block: int, now_s: float = 0.0) -> List[int]:
        """Record an off-lining; gate any newly eligible groups.

        Returns the groups gated by this event.
        """
        self._offline_blocks.add(block)
        self.soa.block_offlined(block, now_s)
        newly = [g for g in self.soa.gate_candidates()
                 if self.register.is_ready(g, now_s * 1e9)]
        for group in newly:
            self.register.gate(group)
            self.soa.group_gated(group, now_s)
        if newly:
            self._sync_mode_registers()
            if TRACER.enabled:
                TRACER.event("power.gate", t_s=now_s, block=block,
                             groups=newly)
        return newly

    def prepare_online(self, block: int, now_s: float = 0.0) -> float:
        """Un-gate the groups *block* touches and wait for readiness.

        Returns the wake-up wait in seconds (the poll loop of Section
        4.2); the caller performs ``online_pages()`` only after this.
        """
        now_ns = now_s * 1e9
        ready_ns = now_ns
        ungated_any = False
        for group in self.block_map.groups_of_block(block):
            if self.register.is_gated(group):
                ready_ns = max(ready_ns,
                               self.register.ungate(group, now_ns))
                self.soa.group_ungated(group, now_s)
                ungated_any = True
        if ungated_any:
            self._sync_mode_registers()
            if TRACER.enabled:
                TRACER.event("power.ungate", t_s=now_s, block=block)
        wait_s = max(0.0, (ready_ns - now_ns) * 1e-9)
        self.wakeup_wait_s += wait_s
        return wait_s

    def block_onlined(self, block: int, now_s: float = 0.0) -> List[int]:
        """Record the completed on-lining; re-gate partner-broken groups.

        On-lining one block may break the pairing constraint for a
        neighbouring gated group; those groups are woken too (they are
        still fully offline but can no longer be held gated).  Returns
        the groups that had to be un-gated.
        """
        self._offline_blocks.discard(block)
        self.soa.block_onlined(block, now_s)
        now_ns = now_s * 1e9
        broken = self.soa.broken_gated_groups()
        for group in broken:
            self.register.ungate(group, now_ns)
            self.soa.group_ungated(group, now_s)
        if broken:
            self._sync_mode_registers()
            if TRACER.enabled:
                TRACER.event("power.ungate_broken", t_s=now_s, block=block,
                             groups=broken)
        return broken

    # --- checkpoint/restore ------------------------------------------------

    def state_dict(self) -> dict:
        return {"register": self.register.state_dict(),
                "mode_registers": self.mode_registers.state_dict(),
                "offline_blocks": self._offline_blocks,
                "soa": self.soa.state_dict(),
                "wakeup_wait_s": self.wakeup_wait_s,
                "mrs_time_ns": self.mrs_time_ns}

    def load_state_dict(self, state: dict) -> None:
        self.register.load_state_dict(state["register"])
        self.mode_registers.load_state_dict(state["mode_registers"])
        self._offline_blocks = state["offline_blocks"]
        self.soa.load_state_dict(state["soa"])
        self.wakeup_wait_s = state["wakeup_wait_s"]
        self.mrs_time_ns = state["mrs_time_ns"]

    # --- power accounting --------------------------------------------------

    @property
    def offline_blocks(self) -> Set[int]:
        return set(self._offline_blocks)

    def gated_capacity_fraction(self) -> float:
        """Fraction of DRAM capacity sitting in deep power-down.

        This is the ``dpd_fraction`` the power model consumes: gated
        groups shed their background and refresh power.
        """
        return self.register.gated_fraction()

    def offline_capacity_fraction(self) -> float:
        """Fraction of capacity off-lined (>= gated when pairing or
        partial groups leave some offline blocks un-gated)."""
        return len(self._offline_blocks) / self.block_map.num_blocks
